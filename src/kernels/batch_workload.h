/**
 * @file
 * The paper's NTT workload: np independent N-point negacyclic NTTs, one
 * per RNS prime (Section III-B). Owns per-prime engines and residue
 * rows; kernel emulations execute against it functionally and are
 * validated bit-exactly.
 */

#ifndef HENTT_KERNELS_BATCH_WORKLOAD_H
#define HENTT_KERNELS_BATCH_WORKLOAD_H

#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "ntt/ntt_engine.h"

namespace hentt::kernels {

/** np residue rows plus their transform engines. */
class NttBatchWorkload
{
  public:
    /**
     * Build a workload of @p np rows of size @p n with fresh primes.
     * @param bits prime size (paper: 60-bit primes in [2^59, 2^60)).
     */
    NttBatchWorkload(std::size_t n, std::size_t np, unsigned bits = 60);

    std::size_t n() const { return n_; }
    std::size_t np() const { return rows_.size(); }
    u64 prime(std::size_t i) const { return engines_[i]->modulus(); }
    const NttEngine &engine(std::size_t i) const { return *engines_[i]; }

    std::vector<u64> &row(std::size_t i) { return rows_[i]; }
    const std::vector<u64> &row(std::size_t i) const { return rows_[i]; }

    /** Fill every row with uniform residues (deterministic). */
    void Randomize(u64 seed);

    /**
     * Invoke fn(i) for every row index, dispatched across the global
     * thread pool as ONE ParallelFor over the batch — the same batching
     * story the HE execution layer uses for RNS limbs (and the CPU
     * analogue of the paper's one-launch-per-batch GPU kernels). Rows
     * are independent, so parallel output is bit-identical to the
     * serial loop; below the grain (or on one lane) this degrades to
     * exactly that loop.
     */
    template <typename Fn>
    void
    ForEachRowParallel(Fn &&fn)
    {
        ParallelFor(np(), n_, std::forward<Fn>(fn));
    }

    /** Total precomputed forward-table bytes across the batch — the
     *  np-fold blow-up that separates NTT from DFT (Section IV). */
    std::size_t TwiddleTableBytes() const;

  private:
    std::size_t n_;
    // Shared through NttEngineRegistry: identical (n, p) workloads —
    // e.g. the batch-size sweeps — reuse one twiddle table set.
    std::vector<std::shared_ptr<const NttEngine>> engines_;
    std::vector<std::vector<u64>> rows_;
};

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_BATCH_WORKLOAD_H
