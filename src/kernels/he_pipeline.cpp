#include "kernels/he_pipeline.h"

#include "kernels/cost_constants.h"

namespace hentt::kernels {

gpu::KernelStats
HadamardKernel(std::size_t n, std::size_t np)
{
    const double batch = static_cast<double>(np);
    const double data = static_cast<double>(n) * kNttElemBytes * batch;
    gpu::KernelStats k;
    k.name = "hadamard";
    k.resources.regs_per_thread = 32;
    k.resources.threads_per_block = kRegisterKernelBlock;
    k.resources.grid_blocks = std::max<std::size_t>(
        1, static_cast<std::size_t>(n * np) / kRegisterKernelBlock);
    k.dram_read_bytes = 2.0 * data;  // two operands
    k.dram_write_bytes = data;
    k.transaction_bytes = k.dram_read_bytes + k.dram_write_bytes;
    // One native modmul per element (no precomputed companion for
    // data-dependent products).
    k.compute_slots = static_cast<double>(n) * batch * 16.0;
    k.launches = 1;
    return k;
}

HeRelinEstimate
EstimateRelinearize(const gpu::Simulator &sim, const SmemConfig &ntt_config,
                    std::size_t np, bool eval_domain_keys)
{
    const SmemKernel ntt(ntt_config);
    const std::size_t n = ntt_config.n();

    // Transform counts in single-row NTTs; each batch of np rows costs
    // one Plan(np). Eval-domain keys: forward only the np CRT digits
    // (np batches) and invert the two accumulators (2 batches). The
    // coefficient-domain formulation re-transforms digits and keys per
    // gadget product (4*np batches forward, 2*np inverse).
    const std::size_t fwd_batches = eval_domain_keys ? np : 4 * np;
    const std::size_t inv_batches = eval_domain_keys ? 2 : 2 * np;
    gpu::LaunchPlan transforms;
    for (std::size_t i = 0; i < fwd_batches + inv_batches; ++i) {
        for (const auto &k : ntt.Plan(np)) {
            transforms.push_back(k);
        }
    }

    // Element-wise passes: np digit lifts plus 2*np gadget products;
    // the coefficient-domain path also streams 2*np accumulation adds.
    gpu::LaunchPlan elementwise;
    const std::size_t passes = eval_domain_keys ? 3 * np : 5 * np;
    for (std::size_t i = 0; i < passes; ++i) {
        elementwise.push_back(HadamardKernel(n, np));
    }

    HeRelinEstimate est;
    est.ntt = sim.Estimate(transforms);
    est.elementwise = sim.Estimate(elementwise);
    est.total_us = est.ntt.total_us + est.elementwise.total_us;
    est.forward_transforms = fwd_batches * np;
    est.inverse_transforms = inv_batches * np;
    return est;
}

HeRelinModSwitchEstimate
EstimateRelinModSwitch(const gpu::Simulator &sim,
                       const SmemConfig &ntt_config, std::size_t np,
                       bool fused)
{
    const SmemKernel ntt(ntt_config);
    const std::size_t n = ntt_config.n();

    // Transforms are fusion-invariant: np digit-forward batches plus
    // the two accumulator inverse batches (the dropped prime's row is
    // still inverse-transformed — the divide-and-round consumes it in
    // coefficient form before it is discarded).
    gpu::LaunchPlan transforms;
    for (std::size_t i = 0; i < np + 2; ++i) {
        for (const auto &k : ntt.Plan(np)) {
            transforms.push_back(k);
        }
    }

    // Element-wise sweeps: the eval-domain Relinearize streams 3*np
    // passes (digit lift + gadget accumulation). The unfused chain then
    // adds the (c0, c1) fold (2), the alpha pre-scaling (2), and the
    // divide-and-round (2); fusing folds the first two into the inverse
    // dispatch, so only the divide-and-round survives as its own sweep.
    const std::size_t passes = fused ? 3 * np + 2 : 3 * np + 6;
    gpu::LaunchPlan elementwise;
    for (std::size_t i = 0; i < passes; ++i) {
        elementwise.push_back(HadamardKernel(n, np));
    }

    HeRelinModSwitchEstimate est;
    est.ntt = sim.Estimate(transforms);
    est.elementwise = sim.Estimate(elementwise);
    est.total_us = est.ntt.total_us + est.elementwise.total_us;
    est.elementwise_passes = passes;
    return est;
}

HeMultiplyEstimate
EstimateHeMultiply(const gpu::Simulator &sim, const SmemConfig &ntt_config,
                   std::size_t np)
{
    const SmemKernel ntt(ntt_config);
    const std::size_t n = ntt_config.n();

    // The inverse transform streams the same bytes and executes the
    // same butterfly count as the forward one; reuse the forward plan.
    gpu::LaunchPlan transforms;
    for (int i = 0; i < 4 + 3; ++i) {
        for (const auto &k : ntt.Plan(np)) {
            transforms.push_back(k);
        }
    }
    gpu::LaunchPlan elementwise;
    for (int i = 0; i < 4; ++i) {
        elementwise.push_back(HadamardKernel(n, np));
    }

    HeMultiplyEstimate est;
    est.ntt = sim.Estimate(transforms);
    est.elementwise = sim.Estimate(elementwise);
    est.total_us = est.ntt.total_us + est.elementwise.total_us;
    est.ntt_share = est.ntt.total_us / est.total_us;
    return est;
}

}  // namespace hentt::kernels
