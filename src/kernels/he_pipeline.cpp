#include "kernels/he_pipeline.h"

#include "kernels/cost_constants.h"

namespace hentt::kernels {

gpu::KernelStats
HadamardKernel(std::size_t n, std::size_t np)
{
    const double batch = static_cast<double>(np);
    const double data = static_cast<double>(n) * kNttElemBytes * batch;
    gpu::KernelStats k;
    k.name = "hadamard";
    k.resources.regs_per_thread = 32;
    k.resources.threads_per_block = kRegisterKernelBlock;
    k.resources.grid_blocks = std::max<std::size_t>(
        1, static_cast<std::size_t>(n * np) / kRegisterKernelBlock);
    k.dram_read_bytes = 2.0 * data;  // two operands
    k.dram_write_bytes = data;
    k.transaction_bytes = k.dram_read_bytes + k.dram_write_bytes;
    // One native modmul per element (no precomputed companion for
    // data-dependent products).
    k.compute_slots = static_cast<double>(n) * batch * 16.0;
    k.launches = 1;
    return k;
}

HeMultiplyEstimate
EstimateHeMultiply(const gpu::Simulator &sim, const SmemConfig &ntt_config,
                   std::size_t np)
{
    const SmemKernel ntt(ntt_config);
    const std::size_t n = ntt_config.n();

    // The inverse transform streams the same bytes and executes the
    // same butterfly count as the forward one; reuse the forward plan.
    gpu::LaunchPlan transforms;
    for (int i = 0; i < 4 + 3; ++i) {
        for (const auto &k : ntt.Plan(np)) {
            transforms.push_back(k);
        }
    }
    gpu::LaunchPlan elementwise;
    for (int i = 0; i < 4; ++i) {
        elementwise.push_back(HadamardKernel(n, np));
    }

    HeMultiplyEstimate est;
    est.ntt = sim.Estimate(transforms);
    est.elementwise = sim.Estimate(elementwise);
    est.total_us = est.ntt.total_us + est.elementwise.total_us;
    est.ntt_share = est.ntt.total_us / est.total_us;
    return est;
}

}  // namespace hentt::kernels
