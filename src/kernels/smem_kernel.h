/**
 * @file
 * Emulation of the shared-memory (SMEM) two-kernel NTT implementation
 * (paper Sections V-VII, Figs. 2, 6, 7, 9, 10, 11, 12).
 *
 * An N-point NTT is split into Kernel-1 (radix N1, strided access) and
 * Kernel-2 (radix N2, contiguous access) with N = N1 * N2, so the data
 * is loaded from GMEM only twice. Inside each kernel, threads perform
 * r1-point per-thread NTTs (r1 = 2, 4, or 8) with block-level
 * synchronizations through SMEM between passes (Fig. 10's trade-off:
 * smaller r1 -> fewer registers but more synchronizations).
 *
 * Options model the paper's individual optimizations:
 *  - coalesced:  fuse thread blocks so Kernel-1's strided loads coalesce
 *                (Fig. 6/7; off = 4x transaction expansion on the data)
 *  - preload:    stage Kernel-1's small twiddle slice in SMEM (Fig. 9)
 *  - ot_stages:  generate twiddles of the last s stages on the fly
 *                (Section VII; shrinks Kernel-2's table traffic)
 */

#ifndef HENTT_KERNELS_SMEM_KERNEL_H
#define HENTT_KERNELS_SMEM_KERNEL_H

#include "gpu/kernel_stats.h"
#include "kernels/batch_workload.h"

namespace hentt::kernels {

/** Configuration of the two-kernel SMEM implementation. */
struct SmemConfig {
    std::size_t kernel1_size = 512;  ///< N1 (radix of Kernel-1)
    std::size_t kernel2_size = 256;  ///< N2 (radix of Kernel-2)
    std::size_t points_per_thread = 8;  ///< r1 (2, 4, or 8)
    bool coalesced = true;
    bool preload_twiddles = true;
    unsigned ot_stages = 0;          ///< OT on the last s stages
    std::size_t ot_base = 1024;

    std::size_t n() const { return kernel1_size * kernel2_size; }
};

/** Two-kernel SMEM NTT emulation. */
class SmemKernel
{
  public:
    explicit SmemKernel(SmemConfig config);

    const SmemConfig &config() const { return config_; }

    /** Launch plan: exactly two KernelStats (Kernel-1, Kernel-2). */
    gpu::LaunchPlan Plan(std::size_t np) const;

    /** Kernel-1 alone (the Fig. 7 / Fig. 9 experiments). */
    gpu::KernelStats PlanKernel1(std::size_t np) const;
    /** Kernel-2 alone. */
    gpu::KernelStats PlanKernel2(std::size_t np) const;

    /** Functional execution (bit-exact vs. NttRadix2 / NttRadix2Ot). */
    void Execute(NttBatchWorkload &workload) const;

    /** Block-level synchronizations per kernel for a radix and r1. */
    static unsigned SyncCount(std::size_t radix,
                              std::size_t points_per_thread);

  private:
    SmemConfig config_;
};

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_SMEM_KERNEL_H
