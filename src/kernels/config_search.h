/**
 * @file
 * Design-space search over SMEM-implementation configurations — the
 * "best-performing combination of radices of Kernel-1 and Kernel-2"
 * the paper selects for Figs. 12/13 and Table II.
 */

#ifndef HENTT_KERNELS_CONFIG_SEARCH_H
#define HENTT_KERNELS_CONFIG_SEARCH_H

#include <vector>

#include "gpu/simulator.h"
#include "kernels/smem_kernel.h"

namespace hentt::kernels {

/**
 * All K1 x K2 splits of an N-point NTT with both kernel sizes >= 64
 * (the paper's constraint: SMEM can host radices up to 2^11, and both
 * kernels need at least 64 points to keep their blocks busy).
 */
std::vector<SmemConfig> CandidateSmemConfigs(
    std::size_t n, std::size_t points_per_thread = 8,
    unsigned ot_stages = 0);

/** A scored configuration. */
struct ScoredConfig {
    SmemConfig config;
    gpu::TimeEstimate estimate;
};

/** Evaluate every candidate under the model, fastest first. */
std::vector<ScoredConfig> RankSmemConfigs(
    const gpu::Simulator &sim, std::size_t n, std::size_t np,
    std::size_t points_per_thread = 8, unsigned ot_stages = 0);

/** The fastest configuration. */
ScoredConfig FindBestSmemConfig(const gpu::Simulator &sim, std::size_t n,
                                std::size_t np,
                                std::size_t points_per_thread = 8,
                                unsigned ot_stages = 0);

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_CONFIG_SEARCH_H
