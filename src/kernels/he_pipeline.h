/**
 * @file
 * GPU-cost composition of a full HE ciphertext multiplication — the
 * paper's motivating workload (Section I: NTT/iNTT is 34% of ciphertext
 * multiplication in [31] and 50.04% in SEAL at (2^15, Q = 2^881)).
 *
 * A BGV/CKKS-style multiply of two degree-1 ciphertexts performs, per
 * RNS prime:
 *   - 4 forward NTTs (two polynomials per operand),
 *   - 4 element-wise (Hadamard) products for the tensor terms,
 *   - 3 inverse NTTs (the degree-2 result),
 * plus non-NTT work (base conversions / relinearization) modeled here
 * only through the element-wise passes it streams. The inverse NTT has
 * the same traffic and butterfly count as the forward transform, so its
 * plan mirrors the forward plan.
 */

#ifndef HENTT_KERNELS_HE_PIPELINE_H
#define HENTT_KERNELS_HE_PIPELINE_H

#include "gpu/simulator.h"
#include "kernels/smem_kernel.h"

namespace hentt::kernels {

/** Cost breakdown of one ciphertext multiplication on the model. */
struct HeMultiplyEstimate {
    gpu::TimeEstimate ntt;        ///< 4 forward + 3 inverse transforms
    gpu::TimeEstimate elementwise;///< tensor Hadamard passes
    double total_us = 0;
    double ntt_share = 0;         ///< ntt / total
};

/** Element-wise modmul kernel over the batch: c = a . b (one pass). */
gpu::KernelStats HadamardKernel(std::size_t n, std::size_t np);

/**
 * Estimate a degree-1 x degree-1 ciphertext multiply at (n, np) with
 * the given SMEM NTT configuration (use FindBestSmemConfig for the
 * paper's tuned transform).
 */
HeMultiplyEstimate EstimateHeMultiply(const gpu::Simulator &sim,
                                      const SmemConfig &ntt_config,
                                      std::size_t np);

/** Cost breakdown of one relinearization (key switch) on the model. */
struct HeRelinEstimate {
    gpu::TimeEstimate ntt;         ///< digit/key transforms
    gpu::TimeEstimate elementwise; ///< digit lift + gadget accumulation
    double total_us = 0;
    std::size_t forward_transforms = 0;  ///< single-row forward NTTs
    std::size_t inverse_transforms = 0;  ///< single-row inverse NTTs
};

/**
 * Estimate a relinearization at (n, np) with the given SMEM NTT
 * configuration — the model counterpart of the CPU execution layer's
 * eval-domain key optimisation (he/ciphertext_batch.h).
 *
 * With @p eval_domain_keys the key parts are stored NTT-transformed at
 * keygen, so the op forwards only the np CRT digits (np^2 row
 * transforms) and inverts the two evaluation-domain accumulators (2*np
 * rows). The coefficient-domain formulation re-transforms keys and
 * digits per gadget product (4*np^2 forward + 2*np^2 inverse rows).
 */
HeRelinEstimate EstimateRelinearize(const gpu::Simulator &sim,
                                    const SmemConfig &ntt_config,
                                    std::size_t np,
                                    bool eval_domain_keys);

/** Cost breakdown of a Relinearize→ModSwitch chain on the model. */
struct HeRelinModSwitchEstimate {
    gpu::TimeEstimate ntt;         ///< digit forwards + accumulator inverses
    gpu::TimeEstimate elementwise; ///< standalone element-wise sweeps
    double total_us = 0;
    /** Standalone element-wise passes over the batch (the quantity the
     *  fusion shrinks; transforms are identical either way). */
    std::size_t elementwise_passes = 0;
};

/**
 * Estimate a full Relinearize→ModSwitch chain at (n, np) with
 * evaluation-domain keys — the model counterpart of the CPU layer's
 * fused BatchRelinModSwitch (he/ciphertext_batch.h).
 *
 * The transform budget is identical either way (np^2 digit forwards,
 * 2*np accumulator inverse rows — every limb must be inverse-
 * transformed because the divide-and-round needs the dropped prime's
 * row in coefficient form). What @p fused changes is the number of
 * standalone element-wise passes after the gadget accumulation: the
 * unfused chain streams the (c0, c1) fold, the alpha pre-scaling, and
 * the divide-and-round as separate sweeps (3np + 6 passes total); the
 * fused stage runs fold + rescale as an epilogue of the inverse
 * dispatch, leaving only the divide-and-round (3np + 2).
 */
HeRelinModSwitchEstimate EstimateRelinModSwitch(const gpu::Simulator &sim,
                                                const SmemConfig &ntt_config,
                                                std::size_t np,
                                                bool fused);

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_HE_PIPELINE_H
