/**
 * @file
 * Emulation of the baseline radix-2 NTT GPU implementation (paper
 * Algo. 1, one kernel launch per stage, one thread per butterfly).
 *
 * This is the paper's baseline configuration: log2(N) passes over the
 * whole batch, streaming data plus a per-stage twiddle slice each pass,
 * which makes it severely main-memory-bandwidth bound (Table II's
 * "Radix-2" column; 86.7% of peak DRAM bandwidth at batch 21).
 */

#ifndef HENTT_KERNELS_RADIX2_KERNEL_H
#define HENTT_KERNELS_RADIX2_KERNEL_H

#include "gpu/kernel_stats.h"
#include "kernels/batch_workload.h"

namespace hentt::kernels {

/** Twiddle-multiply strategy (the Fig. 1 comparison axis). */
enum class Reduction { kShoup, kNative, kBarrett };

/** Baseline per-stage radix-2 kernel emulation. */
class Radix2Kernel
{
  public:
    explicit Radix2Kernel(Reduction reduction = Reduction::kShoup)
        : reduction_(reduction)
    {
    }

    /** Closed-form launch plan: one KernelStats per stage. */
    gpu::LaunchPlan Plan(std::size_t n, std::size_t np) const;

    /** Functional execution (bit-exact vs. NttEngine). */
    void Execute(NttBatchWorkload &workload) const;

  private:
    Reduction reduction_;
};

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_RADIX2_KERNEL_H
