/**
 * @file
 * Calibrated instruction-cost constants for the GPU kernel emulations.
 *
 * Costs are int32-equivalent *issue slots* per operation; the device
 * model additionally applies a sustained-IPC factor (DeviceSpec), so
 * these numbers stay close to real instruction counts. Calibration
 * anchors (paper):
 *
 *  - Shoup's modmul: 2 wide multiplies + 1 low multiply + subtract +
 *    conditional correct on 64-bit words (~4 slots each on 32-bit
 *    lanes) -> a radix-2 butterfly costs ~14 slots.
 *  - Native 64b%32b modulo compiles to 68 machine instructions with a
 *    ~500-cycle dependent latency (paper Section IV); with ~30%
 *    dual-issue overlap this adds ~46 effective slots per butterfly,
 *    reproducing the 2.4x Shoup-vs-native gap of Fig. 1.
 *  - SMEM-implementation butterflies pay extra addressing + SMEM
 *    load/store work (22 slots), and each block-level synchronization
 *    round-trips every element through SMEM (12 slots/element) — this
 *    is the per-thread-NTT-size trade-off of Fig. 10/11.
 *  - OT twiddle generation: one extra Shoup multiply plus exponent
 *    arithmetic (10 slots) per butterfly in an OT stage (Section VII).
 */

#ifndef HENTT_KERNELS_COST_CONSTANTS_H
#define HENTT_KERNELS_COST_CONSTANTS_H

#include <cstddef>

namespace hentt::kernels {

/** Radix-2 global-memory butterfly (Shoup's modmul). */
inline constexpr double kShoupButterflySlots = 14.0;
/** Register-resident high-radix butterfly (extra local indexing). */
inline constexpr double kHighRadixButterflySlots = 16.0;
/** SMEM-implementation butterfly (SMEM addressing + staging). */
inline constexpr double kSmemButterflySlots = 18.0;
/** Extra slots when the twiddle multiply uses the native `%` path. */
inline constexpr double kNativeModExtraSlots = 46.0;
/** Extra slots for a Barrett-reduction twiddle multiply. */
inline constexpr double kBarrettExtraSlots = 6.0;
/** Extra slots per butterfly whose twiddle is generated via OT: one
 *  extra Shoup multiply; the exponent arithmetic dual-issues into the
 *  memory slack the shrunken table opens up. */
inline constexpr double kOtExtraSlots = 4.0;
/** Per-element cost of one block-level synchronization round trip. */
inline constexpr double kSyncElementSlots = 12.0;
/** Extra slots per Kernel-1 butterfly when its strided accesses are
 *  uncoalesced (per-lane sector replays; most over-fetch hits L1/L2). */
inline constexpr double kUncoalescedExtraSlots = 5.0;
/** Fraction of the uncoalesced over-fetch that misses L2 and reaches
 *  DRAM (inflates Kernel-1's read traffic). */
inline constexpr double kUncoalescedDramReadFactor = 1.5;
/** Extra slots per Kernel-1 butterfly when twiddles are fetched from
 *  GMEM/L2 instead of a preloaded SMEM slice (Fig. 9). */
inline constexpr double kNoPreloadTwiddleSlots = 3.0;
/** Single-precision complex DFT butterfly. */
inline constexpr double kDftButterflySlots = 10.0;

/** Thread-block size of the register-based (global) kernels. */
inline constexpr std::size_t kRegisterKernelBlock = 256;
/** Thread-block size of the SMEM-implementation kernels (after the
 *  block-fusion of Fig. 6(b)). */
inline constexpr std::size_t kSmemKernelBlock = 128;

/** Bytes per NTT element (64-bit words, paper Section IV). */
inline constexpr double kNttElemBytes = 8.0;
/** Bytes per twiddle entry including its Shoup companion. */
inline constexpr double kTwiddleEntryBytes = 16.0;
/** Bytes per DFT element (single-precision complex, cuFFT-style). */
inline constexpr double kDftElemBytes = 8.0;

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_COST_CONSTANTS_H
