#include "kernels/highradix_kernel.h"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.h"
#include "kernels/cost_constants.h"

namespace hentt::kernels {

gpu::LaunchPlan
HighRadixKernel::Plan(std::size_t n, std::size_t np) const
{
    if (!IsPowerOfTwo(n) || !IsPowerOfTwo(radix_) || radix_ < 2 ||
        radix_ > n || np == 0) {
        throw std::invalid_argument("invalid high-radix plan parameters");
    }
    const unsigned log_n = Log2Exact(n);
    const unsigned log_r = Log2Exact(radix_);
    const double batch = static_cast<double>(np);
    const double data_bytes = static_cast<double>(n) * kNttElemBytes *
                              batch;
    const unsigned regs = gpu::NttRegisterCost(radix_);
    const double spill_words =
        regs > 255 ? static_cast<double>(regs - 255) : 0.0;
    const double threads_per_pass =
        static_cast<double>(n) / static_cast<double>(radix_) * batch;

    gpu::LaunchPlan plan;
    unsigned stage = 0;
    while (stage < log_n) {
        const unsigned k = std::min(log_r, log_n - stage);
        gpu::KernelStats ks;
        ks.name = "highradix-r" + std::to_string(radix_) + "-pass@" +
                  std::to_string(stage);
        ks.resources.regs_per_thread = regs;
        ks.resources.threads_per_block = kRegisterKernelBlock;
        ks.resources.grid_blocks = std::max<std::size_t>(
            1,
            static_cast<std::size_t>(threads_per_pass) /
                kRegisterKernelBlock);
        // Distinct twiddles in stages [stage, stage + k): 2^(stage+k) -
        // 2^stage entries per prime.
        const double tw_entries =
            static_cast<double>((std::size_t{1} << (stage + k)) -
                                (std::size_t{1} << stage));
        ks.dram_read_bytes =
            data_bytes + tw_entries * kTwiddleEntryBytes * batch;
        ks.dram_write_bytes = data_bytes;
        // Register spill: each spilled word round-trips to LMEM roughly
        // twice over the per-thread NTT (store + reload).
        ks.lmem_bytes = spill_words * 4.0 * 2.0 * 2.0 * threads_per_pass;
        ks.transaction_bytes = ks.dram_read_bytes + ks.dram_write_bytes +
                               ks.lmem_bytes;
        ks.compute_slots = static_cast<double>(n / 2) * k * batch *
                           kHighRadixButterflySlots;
        ks.launches = 1;
        plan.push_back(std::move(ks));
        stage += k;
    }
    return plan;
}

void
HighRadixKernel::Execute(NttBatchWorkload &workload) const
{
    // One pool dispatch over the batch — the CPU stand-in for the
    // paper's single batched kernel launch (Fig. 3).
    workload.ForEachRowParallel([&](std::size_t i) {
        workload.engine(i).Forward(workload.row(i),
                                   NttAlgorithm::kHighRadix, radix_);
    });
}

}  // namespace hentt::kernels
