/**
 * @file
 * Emulation of the register-based high-radix NTT kernel (paper Section
 * V / Fig. 4): each thread gathers R points into registers, runs an
 * R-point NTT privately, and scatters back, so an N-point NTT needs
 * ceil(log2 N / log2 R) GMEM round trips instead of log2 N.
 *
 * The cost is register pressure: the calibrated register table
 * (gpu::NttRegisterCost) caps occupancy at radix 32 and spills to LMEM
 * at radix 64/128, reproducing the paper's finding that radix-16 is the
 * sweet spot for NTT.
 */

#ifndef HENTT_KERNELS_HIGHRADIX_KERNEL_H
#define HENTT_KERNELS_HIGHRADIX_KERNEL_H

#include "gpu/kernel_stats.h"
#include "kernels/batch_workload.h"

namespace hentt::kernels {

/** Register-resident high-radix kernel emulation. */
class HighRadixKernel
{
  public:
    explicit HighRadixKernel(std::size_t radix) : radix_(radix) {}

    std::size_t radix() const { return radix_; }

    /** Closed-form launch plan: one KernelStats per pass. */
    gpu::LaunchPlan Plan(std::size_t n, std::size_t np) const;

    /** Functional execution (bit-exact vs. NttRadix2). */
    void Execute(NttBatchWorkload &workload) const;

  private:
    std::size_t radix_;
};

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_HIGHRADIX_KERNEL_H
