#include "kernels/batch_workload.h"

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_registry.h"

namespace hentt::kernels {

NttBatchWorkload::NttBatchWorkload(std::size_t n, std::size_t np,
                                   unsigned bits)
    : n_(n)
{
    const std::vector<u64> primes = GenerateNttPrimes(2 * n, bits, np);
    engines_.reserve(np);
    rows_.reserve(np);
    for (u64 p : primes) {
        engines_.push_back(NttEngineRegistry::Global().Acquire(n, p));
        rows_.emplace_back(n, 0);
    }
}

void
NttBatchWorkload::Randomize(u64 seed)
{
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const u64 p = prime(i);
        for (u64 &x : rows_[i]) {
            x = rng.NextBelow(p);
        }
    }
}

std::size_t
NttBatchWorkload::TwiddleTableBytes() const
{
    std::size_t total = 0;
    for (const auto &engine : engines_) {
        total += engine->table().forward_table_bytes();
    }
    return total;
}

}  // namespace hentt::kernels
