#include "kernels/radix2_kernel.h"

#include <stdexcept>

#include "common/bitops.h"
#include "kernels/cost_constants.h"

namespace hentt::kernels {

gpu::LaunchPlan
Radix2Kernel::Plan(std::size_t n, std::size_t np) const
{
    if (!IsPowerOfTwo(n) || np == 0) {
        throw std::invalid_argument("invalid radix-2 plan parameters");
    }
    const unsigned log_n = Log2Exact(n);
    const double batch = static_cast<double>(np);
    const double data_bytes = static_cast<double>(n) * kNttElemBytes *
                              batch;
    // Barrett needs no per-twiddle companion word; Shoup doubles it.
    const double tw_entry = reduction_ == Reduction::kBarrett
                                ? kNttElemBytes
                                : kTwiddleEntryBytes;
    double butterfly_slots = kShoupButterflySlots;
    if (reduction_ == Reduction::kNative) {
        butterfly_slots += kNativeModExtraSlots;
    } else if (reduction_ == Reduction::kBarrett) {
        butterfly_slots += kBarrettExtraSlots;
    }

    gpu::LaunchPlan plan;
    plan.reserve(log_n);
    for (unsigned s = 0; s < log_n; ++s) {
        gpu::KernelStats k;
        k.name = "radix2-stage-" + std::to_string(s);
        k.resources.regs_per_thread = gpu::NttRegisterCost(2);
        k.resources.threads_per_block = kRegisterKernelBlock;
        k.resources.grid_blocks =
            std::max<std::size_t>(1, n / 2 * np / kRegisterKernelBlock);
        // Stream the batch once per stage; stage s reads 2^s distinct
        // twiddles per prime (Fig. 8's doubling series).
        k.dram_read_bytes = data_bytes +
                            static_cast<double>(std::size_t{1} << s) *
                                tw_entry * batch;
        k.dram_write_bytes = data_bytes;
        k.transaction_bytes = k.dram_read_bytes + k.dram_write_bytes;
        k.compute_slots = static_cast<double>(n / 2) * batch *
                          butterfly_slots;
        k.launches = 1;
        plan.push_back(std::move(k));
    }
    return plan;
}

void
Radix2Kernel::Execute(NttBatchWorkload &workload) const
{
    // The Shoup path executes through the lazy [0, 4p) pipeline — the
    // butterfly the GPU kernels actually run, bit-identical to the
    // strict kRadix2 and routed through the SIMD backend layer's fused
    // radix-4 stage walker (two butterfly levels per kernel dispatch;
    // see ntt_lazy.cpp). The native/Barrett reductions stay on
    // their strict ablation paths (they exist to reproduce the Fig. 1
    // contrast, not to be fast).
    NttAlgorithm algo = NttAlgorithm::kRadix2Lazy;
    if (reduction_ == Reduction::kNative) {
        algo = NttAlgorithm::kRadix2Native;
    } else if (reduction_ == Reduction::kBarrett) {
        algo = NttAlgorithm::kRadix2Barrett;
    }
    // One pool dispatch over the batch — the CPU stand-in for the
    // paper's single batched kernel launch (Fig. 3).
    workload.ForEachRowParallel([&](std::size_t i) {
        workload.engine(i).Forward(workload.row(i), algo);
    });
}

}  // namespace hentt::kernels
