#include "kernels/launcher.h"

#include <cstdio>

namespace hentt::kernels {

EstimateRow
EstimateRadix2(const gpu::Simulator &sim, std::size_t n, std::size_t np,
               Reduction reduction)
{
    const Radix2Kernel kernel(reduction);
    const char *tag = reduction == Reduction::kShoup
                          ? "shoup"
                          : (reduction == Reduction::kNative ? "native"
                                                             : "barrett");
    return {"radix2-" + std::string(tag),
            sim.Estimate(kernel.Plan(n, np))};
}

EstimateRow
EstimateHighRadix(const gpu::Simulator &sim, std::size_t n, std::size_t np,
                  std::size_t radix)
{
    const HighRadixKernel kernel(radix);
    return {"highradix-" + std::to_string(radix),
            sim.Estimate(kernel.Plan(n, np))};
}

EstimateRow
EstimateSmem(const gpu::Simulator &sim, const SmemConfig &cfg,
             std::size_t np)
{
    const SmemKernel kernel(cfg);
    std::string label = "smem-" + std::to_string(cfg.kernel1_size) + "x" +
                        std::to_string(cfg.kernel2_size);
    if (cfg.ot_stages > 0) {
        label += "-ot" + std::to_string(cfg.ot_stages);
    }
    return {std::move(label), sim.Estimate(kernel.Plan(np))};
}

void
PrintRow(const EstimateRow &row)
{
    std::printf("%-28s %10.1f us %10.1f MB  occ %4.0f%%  util %4.0f%%  %s\n",
                row.label.c_str(), row.time_us(), row.dram_mb(),
                row.estimate.occupancy * 100.0,
                row.estimate.dram_utilization * 100.0,
                row.estimate.memory_bound ? "mem-bound" : "compute-bound");
}

}  // namespace hentt::kernels
