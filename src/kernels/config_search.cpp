#include "kernels/config_search.h"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.h"

namespace hentt::kernels {

std::vector<SmemConfig>
CandidateSmemConfigs(std::size_t n, std::size_t points_per_thread,
                     unsigned ot_stages)
{
    if (!IsPowerOfTwo(n) || n < 64 * 64) {
        throw std::invalid_argument(
            "N must be a power of two >= 4096 for the two-kernel split");
    }
    std::vector<SmemConfig> configs;
    const unsigned log_n = Log2Exact(n);
    // The paper's sweep (Fig. 12(a)): Kernel-1 radices 2^5..2^9 (its
    // twiddle slice must preload into SMEM), Kernel-2 up to 2^11.
    const unsigned hi = std::min(9u, log_n - 6);
    const unsigned lo = std::max(5u, log_n > 11 ? log_n - 11 : 5u);
    for (unsigned log_k1 = lo; log_k1 <= hi; ++log_k1) {
        const unsigned log_k2 = log_n - log_k1;
        if (log_k2 > 11) {
            continue;
        }
        SmemConfig cfg;
        cfg.kernel1_size = std::size_t{1} << log_k1;
        cfg.kernel2_size = std::size_t{1} << log_k2;
        cfg.points_per_thread = points_per_thread;
        cfg.ot_stages = ot_stages;
        configs.push_back(cfg);
    }
    return configs;
}

std::vector<ScoredConfig>
RankSmemConfigs(const gpu::Simulator &sim, std::size_t n, std::size_t np,
                std::size_t points_per_thread, unsigned ot_stages)
{
    std::vector<ScoredConfig> scored;
    for (const SmemConfig &cfg :
         CandidateSmemConfigs(n, points_per_thread, ot_stages)) {
        const SmemKernel kernel(cfg);
        scored.push_back({cfg, sim.Estimate(kernel.Plan(np))});
    }
    std::sort(scored.begin(), scored.end(),
              [](const ScoredConfig &a, const ScoredConfig &b) {
                  return a.estimate.total_us < b.estimate.total_us;
              });
    return scored;
}

ScoredConfig
FindBestSmemConfig(const gpu::Simulator &sim, std::size_t n,
                   std::size_t np, std::size_t points_per_thread,
                   unsigned ot_stages)
{
    const auto ranked =
        RankSmemConfigs(sim, n, np, points_per_thread, ot_stages);
    if (ranked.empty()) {
        throw std::runtime_error("no feasible SMEM configuration");
    }
    return ranked.front();
}

}  // namespace hentt::kernels
