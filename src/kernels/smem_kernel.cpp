#include "kernels/smem_kernel.h"

#include <cmath>
#include <stdexcept>

#include "common/bitops.h"
#include "kernels/cost_constants.h"

namespace hentt::kernels {

namespace {

/** ceil(log_{r1}(radix)) — per-thread NTT passes inside one kernel. */
unsigned
PassCount(std::size_t radix, std::size_t r1)
{
    const unsigned total = Log2Exact(radix);
    const unsigned per = Log2Exact(r1);
    return (total + per - 1) / per;
}

}  // namespace

SmemKernel::SmemKernel(SmemConfig config) : config_(config)
{
    if (!IsPowerOfTwo(config_.kernel1_size) ||
        !IsPowerOfTwo(config_.kernel2_size) ||
        config_.kernel1_size < 2 || config_.kernel2_size < 2) {
        throw std::invalid_argument("kernel sizes must be powers of two");
    }
    if (config_.points_per_thread != 2 && config_.points_per_thread != 4 &&
        config_.points_per_thread != 8) {
        throw std::invalid_argument("points_per_thread must be 2, 4, or 8");
    }
    if (config_.ot_stages > Log2Exact(config_.n())) {
        throw std::invalid_argument("ot_stages exceeds stage count");
    }
}

unsigned
SmemKernel::SyncCount(std::size_t radix, std::size_t points_per_thread)
{
    return PassCount(radix, points_per_thread) - 1;
}

gpu::KernelStats
SmemKernel::PlanKernel1(std::size_t np) const
{
    const std::size_t n = config_.n();
    const std::size_t n1 = config_.kernel1_size;
    const std::size_t r1 = config_.points_per_thread;
    const double batch = static_cast<double>(np);
    const double data_bytes = static_cast<double>(n) * kNttElemBytes *
                              batch;
    const unsigned passes = PassCount(n1, r1);
    const unsigned syncs = passes - 1;

    gpu::KernelStats k;
    k.name = "smem-kernel1-r" + std::to_string(n1);
    k.resources.regs_per_thread = gpu::SmemKernelRegisterCost(r1);
    k.resources.threads_per_block = kSmemKernelBlock;
    k.resources.grid_blocks = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(static_cast<double>(n) / r1 * batch) /
            kSmemKernelBlock);
    // Block working set: every resident point, plus the preloaded
    // twiddle slice (Fig. 9's configuration).
    const double table_per_block =
        2.0 * static_cast<double>(n1) * kNttElemBytes;
    k.resources.smem_per_block =
        static_cast<std::size_t>(r1 * kSmemKernelBlock * kNttElemBytes) +
        (config_.preload_twiddles
             ? static_cast<std::size_t>(table_per_block)
             : 0);

    // Kernel-1 covers stages 1..log2(N1): N1 - 1 distinct twiddles per
    // prime; the distinct working set is L2-resident, so DRAM sees it
    // once, while per-block (re)fetches load the transaction path.
    const double tw_dram = static_cast<double>(n1) * kTwiddleEntryBytes *
                           batch;
    const double blocks = static_cast<double>(k.resources.grid_blocks);
    const double tw_tx = config_.preload_twiddles
                             ? blocks * table_per_block
                             : blocks * table_per_block * (passes + 1);

    // Fig. 6: without block fusion the strided loads waste 3/4 of each
    // 32-byte sector. Most of the over-fetch hits in L1/L2 (neighbor
    // lanes consume the same lines on later load steps), so the DRAM
    // side only sees a fraction of it; the rest shows up as per-lane
    // sector replays, i.e. extra issue slots.
    const double read_factor =
        config_.coalesced ? 1.0 : kUncoalescedDramReadFactor;
    const double tx_read_expansion = config_.coalesced ? 1.0 : 2.0;
    k.dram_read_bytes = data_bytes * read_factor + tw_dram;
    k.dram_write_bytes = data_bytes;
    k.transaction_bytes =
        data_bytes * tx_read_expansion + data_bytes + tw_tx;
    const double butterflies =
        static_cast<double>(n / 2) * Log2Exact(n1) * batch;
    double slots_per_butterfly = kSmemButterflySlots;
    if (!config_.coalesced) {
        slots_per_butterfly += kUncoalescedExtraSlots;
    }
    if (!config_.preload_twiddles) {
        slots_per_butterfly += kNoPreloadTwiddleSlots;
    }
    k.compute_slots =
        butterflies * slots_per_butterfly +
        static_cast<double>(syncs) * static_cast<double>(n) * batch *
            kSyncElementSlots;
    k.block_syncs = syncs;
    k.launches = 1;
    return k;
}

gpu::KernelStats
SmemKernel::PlanKernel2(std::size_t np) const
{
    const std::size_t n = config_.n();
    const std::size_t n1 = config_.kernel1_size;
    const std::size_t n2 = config_.kernel2_size;
    const std::size_t r1 = config_.points_per_thread;
    const double batch = static_cast<double>(np);
    const double data_bytes = static_cast<double>(n) * kNttElemBytes *
                              batch;
    const unsigned syncs = PassCount(n2, r1) - 1;

    gpu::KernelStats k;
    k.name = "smem-kernel2-r" + std::to_string(n2);
    k.resources.regs_per_thread = gpu::SmemKernelRegisterCost(r1);
    k.resources.threads_per_block = kSmemKernelBlock;
    k.resources.grid_blocks = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(static_cast<double>(n) / r1 * batch) /
            kSmemKernelBlock);
    k.resources.smem_per_block =
        static_cast<std::size_t>(r1 * kSmemKernelBlock * kNttElemBytes);

    // Kernel-2 covers stages log2(N1)+1 .. log2(N): N - N1 distinct
    // twiddles per prime — the table bulk (Fig. 8). On-the-fly
    // twiddling replaces the last ot_stages stages' entries (all
    // indices >= N / 2^s) with the factorized lo/hi tables.
    double tw_entries = static_cast<double>(n - n1);
    double extra_slots = 0.0;
    if (config_.ot_stages > 0) {
        const double kept = static_cast<double>(n) /
                            std::pow(2.0, config_.ot_stages);
        tw_entries = std::max(0.0, kept - static_cast<double>(n1));
        const std::size_t ot_base = std::min(config_.ot_base, 2 * n);
        tw_entries += static_cast<double>(ot_base) +
                      2.0 * static_cast<double>(n) /
                          static_cast<double>(ot_base);
        // One extra Shoup multiply + exponent arithmetic per butterfly
        // in each OT stage.
        extra_slots = static_cast<double>(n / 2) * config_.ot_stages *
                      batch * kOtExtraSlots;
    }

    k.dram_read_bytes = data_bytes + tw_entries * kTwiddleEntryBytes *
                                         batch;
    k.dram_write_bytes = data_bytes;
    k.transaction_bytes = k.dram_read_bytes + k.dram_write_bytes;
    k.compute_slots =
        static_cast<double>(n / 2) * Log2Exact(n2) * batch *
            kSmemButterflySlots +
        static_cast<double>(syncs) * static_cast<double>(n) * batch *
            kSyncElementSlots +
        extra_slots;
    k.block_syncs = syncs;
    k.launches = 1;
    return k;
}

gpu::LaunchPlan
SmemKernel::Plan(std::size_t np) const
{
    return {PlanKernel1(np), PlanKernel2(np)};
}

void
SmemKernel::Execute(NttBatchWorkload &workload) const
{
    if (workload.n() != config_.n()) {
        throw std::invalid_argument("workload size != N1 * N2");
    }
    // One pool dispatch over the batch — the CPU stand-in for the
    // paper's single batched kernel launch (Fig. 3). Without OT stages
    // the rows run through the lazy pipeline (bit-identical to the
    // strict kRadix2, vectorized by the SIMD backend and walked in
    // fused radix-4 stage pairs — ceil(log N / 2) kernel dispatches
    // per row, single-pass per dispatch on the scalar/AVX-512 tables).
    workload.ForEachRowParallel([&](std::size_t i) {
        if (config_.ot_stages > 0) {
            workload.engine(i).Forward(workload.row(i),
                                       NttAlgorithm::kRadix2Ot,
                                       /*radix=*/16, config_.ot_stages);
        } else {
            workload.engine(i).Forward(workload.row(i),
                                       NttAlgorithm::kRadix2Lazy);
        }
    });
}

}  // namespace hentt::kernels
