/**
 * @file
 * DFT (FFT) counterparts of the NTT kernel emulations, used for the
 * paper's NTT-vs-DFT comparisons (Figs. 3(b), 5, 11(b)).
 *
 * The modeled DFT is the paper's custom radix-2 FFT "without
 * bit-reversing": single-precision complex data (8 bytes per element,
 * cuFFT-style C2C), floating-point butterflies, and — the key
 * algorithmic difference — a twiddle table that is *shared across the
 * whole batch*, because every N-point DFT uses the same N-th root of
 * unity. NTT's table instead scales with np and carries Shoup
 * companions, which is the root of its memory-bandwidth problem
 * (Section IV, "Precomputed table size with batching").
 *
 * A functional complex<double> reference FFT is included so tests can
 * validate the transform the plans describe.
 */

#ifndef HENTT_KERNELS_DFT_KERNELS_H
#define HENTT_KERNELS_DFT_KERNELS_H

#include <complex>
#include <vector>

#include "gpu/kernel_stats.h"

namespace hentt::kernels {

/** Per-stage radix-2 DFT baseline (Fig. 3(b)). */
gpu::LaunchPlan DftRadix2Plan(std::size_t n, std::size_t batch);

/** Register-based high-radix DFT (Fig. 5). */
gpu::LaunchPlan DftHighRadixPlan(std::size_t n, std::size_t batch,
                                 std::size_t radix);

/** Two-kernel SMEM DFT (Fig. 11(b)). */
gpu::LaunchPlan DftSmemPlan(std::size_t n1, std::size_t n2,
                            std::size_t batch,
                            std::size_t points_per_thread);

/**
 * Functional radix-2 cyclic FFT (Cooley-Tukey, natural-order input,
 * bit-reversed output — mirroring the NTT variant). In place.
 */
void FftRadix2(std::vector<std::complex<double>> &a, bool inverse = false);

/** Naive O(N^2) DFT for validation. */
std::vector<std::complex<double>>
NaiveDft(const std::vector<std::complex<double>> &a);

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_DFT_KERNELS_H
