#include "kernels/dft_kernels.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/bitops.h"
#include "kernels/cost_constants.h"

namespace hentt::kernels {

namespace {

/** DFT twiddle DRAM bytes: one table for the whole batch. */
double
DftTableBytes(std::size_t distinct_entries)
{
    return static_cast<double>(distinct_entries) * kDftElemBytes;
}

}  // namespace

gpu::LaunchPlan
DftRadix2Plan(std::size_t n, std::size_t batch)
{
    if (!IsPowerOfTwo(n) || batch == 0) {
        throw std::invalid_argument("invalid DFT plan parameters");
    }
    const unsigned log_n = Log2Exact(n);
    const double b = static_cast<double>(batch);
    const double data_bytes = static_cast<double>(n) * kDftElemBytes * b;

    gpu::LaunchPlan plan;
    for (unsigned s = 0; s < log_n; ++s) {
        gpu::KernelStats k;
        k.name = "dft-radix2-stage-" + std::to_string(s);
        k.resources.regs_per_thread = gpu::DftRegisterCost(2);
        k.resources.threads_per_block = kRegisterKernelBlock;
        k.resources.grid_blocks =
            std::max<std::size_t>(1, n / 2 * batch / kRegisterKernelBlock);
        k.dram_read_bytes =
            data_bytes + DftTableBytes(std::size_t{1} << s);
        k.dram_write_bytes = data_bytes;
        k.transaction_bytes = k.dram_read_bytes + k.dram_write_bytes;
        k.compute_slots = static_cast<double>(n / 2) * b *
                          kDftButterflySlots;
        plan.push_back(std::move(k));
    }
    return plan;
}

gpu::LaunchPlan
DftHighRadixPlan(std::size_t n, std::size_t batch, std::size_t radix)
{
    if (!IsPowerOfTwo(n) || !IsPowerOfTwo(radix) || radix < 2 ||
        radix > n || batch == 0) {
        throw std::invalid_argument("invalid DFT high-radix parameters");
    }
    const unsigned log_n = Log2Exact(n);
    const unsigned log_r = Log2Exact(radix);
    const double b = static_cast<double>(batch);
    const double data_bytes = static_cast<double>(n) * kDftElemBytes * b;
    const unsigned regs = gpu::DftRegisterCost(radix);
    const double spill_words =
        regs > 255 ? static_cast<double>(regs - 255) : 0.0;
    const double threads_per_pass =
        static_cast<double>(n) / static_cast<double>(radix) * b;

    gpu::LaunchPlan plan;
    unsigned stage = 0;
    while (stage < log_n) {
        const unsigned k_stages = std::min(log_r, log_n - stage);
        gpu::KernelStats ks;
        ks.name = "dft-highradix-r" + std::to_string(radix) + "-pass@" +
                  std::to_string(stage);
        ks.resources.regs_per_thread = regs;
        ks.resources.threads_per_block = kRegisterKernelBlock;
        ks.resources.grid_blocks = std::max<std::size_t>(
            1,
            static_cast<std::size_t>(threads_per_pass) /
                kRegisterKernelBlock);
        ks.dram_read_bytes =
            data_bytes +
            DftTableBytes((std::size_t{1} << (stage + k_stages)) -
                          (std::size_t{1} << stage));
        ks.dram_write_bytes = data_bytes;
        ks.lmem_bytes = spill_words * 4.0 * 2.0 * 2.0 * threads_per_pass;
        ks.transaction_bytes = ks.dram_read_bytes + ks.dram_write_bytes +
                               ks.lmem_bytes;
        ks.compute_slots = static_cast<double>(n / 2) * k_stages * b *
                           kDftButterflySlots;
        plan.push_back(std::move(ks));
        stage += k_stages;
    }
    return plan;
}

gpu::LaunchPlan
DftSmemPlan(std::size_t n1, std::size_t n2, std::size_t batch,
            std::size_t points_per_thread)
{
    if (!IsPowerOfTwo(n1) || !IsPowerOfTwo(n2) || batch == 0) {
        throw std::invalid_argument("invalid DFT SMEM parameters");
    }
    if (points_per_thread != 2 && points_per_thread != 4 &&
        points_per_thread != 8) {
        throw std::invalid_argument("points_per_thread must be 2, 4, 8");
    }
    const std::size_t n = n1 * n2;
    const double b = static_cast<double>(batch);
    const double data_bytes = static_cast<double>(n) * kDftElemBytes * b;
    const unsigned per = Log2Exact(points_per_thread);

    auto make_kernel = [&](std::size_t radix, const char *name) {
        const unsigned passes = (Log2Exact(radix) + per - 1) / per;
        const unsigned syncs = passes - 1;
        gpu::KernelStats k;
        k.name = name;
        // DFT SMEM threads hold float2 points: lighter than the NTT
        // equivalents (no modulus/companion state).
        k.resources.regs_per_thread =
            gpu::SmemKernelRegisterCost(points_per_thread) - 8;
        k.resources.threads_per_block = kSmemKernelBlock;
        k.resources.grid_blocks = std::max<std::size_t>(
            1,
            static_cast<std::size_t>(static_cast<double>(n) /
                                     points_per_thread * b) /
                kSmemKernelBlock);
        k.resources.smem_per_block = static_cast<std::size_t>(
            points_per_thread * kSmemKernelBlock * kDftElemBytes);
        k.dram_read_bytes = data_bytes + DftTableBytes(radix);
        k.dram_write_bytes = data_bytes;
        k.transaction_bytes = k.dram_read_bytes + k.dram_write_bytes;
        k.compute_slots =
            static_cast<double>(n / 2) * Log2Exact(radix) * b *
                kDftButterflySlots +
            static_cast<double>(syncs) * static_cast<double>(n) * b *
                kSyncElementSlots;
        k.block_syncs = syncs;
        return k;
    };

    return {make_kernel(n1, "dft-smem-kernel1"),
            make_kernel(n2, "dft-smem-kernel2")};
}

void
FftRadix2(std::vector<std::complex<double>> &a, bool inverse)
{
    const std::size_t n = a.size();
    if (!IsPowerOfTwo(n)) {
        throw std::invalid_argument("FFT size must be a power of two");
    }
    const double sign = inverse ? 1.0 : -1.0;
    std::size_t t = n / 2;
    for (std::size_t m = 1; m < n; m <<= 1) {
        const unsigned stage_bits = Log2Exact(m == 1 ? 1 : m);
        for (std::size_t j = 0; j < m; ++j) {
            // Natural-order-input DIT consumes twiddles in bit-reversed
            // group order: w = omega_{2m}^{bitrev(j, log2 m)} — the same
            // scheme as the NTT's Psi[m + j] table.
            const std::size_t rev =
                m == 1 ? 0 : BitReverse(j, stage_bits);
            const double angle =
                sign * std::numbers::pi * static_cast<double>(rev) /
                static_cast<double>(m);
            const std::complex<double> w(std::cos(angle),
                                         std::sin(angle));
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                const std::complex<double> u = a[k];
                const std::complex<double> v = a[k + t] * w;
                a[k] = u + v;
                a[k + t] = u - v;
            }
        }
        t >>= 1;
    }
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &x : a) {
            x *= scale;
        }
    }
}

std::vector<std::complex<double>>
NaiveDft(const std::vector<std::complex<double>> &a)
{
    const std::size_t n = a.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const double angle = -2.0 * std::numbers::pi *
                                 static_cast<double>(i * k % n) /
                                 static_cast<double>(n);
            acc += a[i] * std::complex<double>(std::cos(angle),
                                               std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

}  // namespace hentt::kernels
