/**
 * @file
 * Convenience front-end tying workloads, kernel emulations, and the
 * performance model together; shared by the benches and examples.
 */

#ifndef HENTT_KERNELS_LAUNCHER_H
#define HENTT_KERNELS_LAUNCHER_H

#include <string>

#include "gpu/simulator.h"
#include "kernels/highradix_kernel.h"
#include "kernels/radix2_kernel.h"
#include "kernels/smem_kernel.h"

namespace hentt::kernels {

/** Result of estimating one NTT implementation on the model. */
struct EstimateRow {
    std::string label;
    gpu::TimeEstimate estimate;

    double time_us() const { return estimate.total_us; }
    double dram_mb() const { return estimate.dram_bytes / 1.0e6; }
};

/** Estimate the per-stage radix-2 baseline. */
EstimateRow EstimateRadix2(const gpu::Simulator &sim, std::size_t n,
                           std::size_t np,
                           Reduction reduction = Reduction::kShoup);

/** Estimate the register-based high-radix kernel. */
EstimateRow EstimateHighRadix(const gpu::Simulator &sim, std::size_t n,
                              std::size_t np, std::size_t radix);

/** Estimate the two-kernel SMEM implementation. */
EstimateRow EstimateSmem(const gpu::Simulator &sim, const SmemConfig &cfg,
                         std::size_t np);

/** Print a one-line summary of a row (benches' table body). */
void PrintRow(const EstimateRow &row);

}  // namespace hentt::kernels

#endif  // HENTT_KERNELS_LAUNCHER_H
