#include "he/ciphertext_batch.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/modarith.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "he/batch_access.h"
#include "simd/simd_backend.h"

namespace hentt::he {

namespace {

/**
 * Element-wise add/sub task over one limb row; the shared flattening
 * unit of BatchAdd and friends. `fold_src` folds lazy [0, 4p) source
 * rows on the fly (the destination must already be fully reduced).
 */
struct AddTask {
    u64 *dst;
    const u64 *src;
    u64 p;
    std::size_t n;
    bool fold_src;
};

/** Append one task per limb for dst[i] = dst[i] +/- src[i]. The
 *  destination is reduced first when lazy; lazy sources fold per
 *  element. */
void
AppendAddTasks(std::vector<AddTask> &tasks, RnsPoly &dst,
               const RnsPoly &src, std::size_t &max_n)
{
    dst.ReduceLazy();
    const RnsBasis &basis = src.context().basis();
    for (std::size_t l = 0; l < src.prime_count(); ++l) {
        tasks.push_back({dst.row(l).data(), src.row(l).data(),
                         basis.prime(l), src.degree(), src.lazy()});
        max_n = std::max(max_n, src.degree());
    }
}

/** One pool dispatch over the whole task list (simd add/sub rows). */
void
RunAddTasks(const std::vector<AddTask> &tasks, std::size_t max_n,
            bool subtract)
{
    AddElementwisePasses(tasks.size());
    ParallelFor(tasks.size(), max_n, [&](std::size_t t) {
        const AddTask &task = tasks[t];
        if (subtract) {
            simd::Active().sub_rows(task.dst, task.dst, task.src,
                                    task.n, task.p, task.fold_src);
        } else {
            simd::Active().add_rows(task.dst, task.dst, task.src,
                                    task.n, task.p, task.fold_src);
        }
    });
}

/** Throw a kInvalidArgument whose provenance frame names the batch
 *  kernel and the offending ciphertext index. Still catchable as
 *  std::invalid_argument through the exception bridge. */
[[noreturn]] void
ThrowBatchArg(const char *op, std::size_t index, const char *what)
{
    ThrowStatus(Status(ErrorCode::kInvalidArgument, what)
                    .WithFrame(std::string(op) + "(ciphertext " +
                               std::to_string(index) + ")"));
}

/** Throw a kFailedPrecondition for a ciphertext whose state cannot
 *  support the op — the modulus-chain-exhaustion case: the operands are
 *  well-formed, the *schedule* asked for one descent too many. Deep
 *  circuit drivers distinguish this from malformed-argument errors
 *  (kInvalidArgument) to know the chain ended cleanly. Catchable as
 *  std::logic_error (PreconditionError) through the exception bridge. */
[[noreturn]] void
ThrowBatchPrecondition(const char *op, std::size_t index,
                       const char *what)
{
    ThrowStatus(Status(ErrorCode::kFailedPrecondition, what)
                    .WithFrame(std::string(op) + "(ciphertext " +
                               std::to_string(index) + ")"));
}

void
CheckSpanLengths(const char *op, std::size_t a, std::size_t b,
                 std::size_t out)
{
    if (a != b || a != out) {
        ThrowStatus(Status(ErrorCode::kInvalidArgument,
                           "batch spans must have equal length")
                        .WithFrame(op));
    }
}

/** Throw unless the two ciphertexts share degree, level, and domain. */
void
CheckPairCompatible(const char *op, std::size_t index,
                    const Ciphertext &a, const Ciphertext &b)
{
    if (a.parts.size() != b.parts.size()) {
        ThrowBatchArg(op, index, "ciphertext degrees differ");
    }
    for (std::size_t j = 0; j < a.parts.size(); ++j) {
        if (&a.parts[j].context() != &b.parts[j].context()) {
            ThrowBatchArg(op, index,
                          "ciphertexts from different levels/contexts");
        }
        if (a.parts[j].domain() != b.parts[j].domain()) {
            ThrowBatchArg(op, index,
                          "ciphertext parts in different domains");
        }
    }
}

/**
 * Shape @p ct as @p count coefficient-domain parts at @p level, reusing
 * the existing part buffers (RnsPoly::ResetScratch) so steady-state
 * output reuse allocates nothing. Row contents are stale; the caller
 * must overwrite every element of every row.
 */
void
EnsureParts(Ciphertext &ct, std::size_t count,
            const std::shared_ptr<const RnsNttContext> &level)
{
    while (ct.parts.size() > count) {
        ct.parts.pop_back();
    }
    for (RnsPoly &part : ct.parts) {
        part.ResetScratch(level, /*zero=*/false);
    }
    ct.parts.reserve(count);
    while (ct.parts.size() < count) {
        ct.parts.emplace_back(level);
    }
}

/** One single-row transform (forward or inverse) in a batched NTT
 *  dispatch. */
struct RowTask {
    const NttEngine *engine;
    u64 *row;
    std::size_t n;
};

/**
 * The divide-and-round of one (part, target limb) row — the shared
 * rescale epilogue of BatchModSwitch and the fused RelinModSwitch,
 * executed by the simd backend's divide_round_rows kernel.
 */
struct RescaleTask {
    const u64 *src;  ///< alpha-scaled row for the target limb
    const u64 *top;  ///< row of the dropped prime
    u64 *dst;        ///< output row at the next level
    simd::DivideRoundConsts c;
    std::size_t n;
};

/** Fill the level-dependent constants of a divide-and-round task set:
 *  everything except the per-limb entries. */
simd::DivideRoundConsts
DivideRoundTop(u64 qk, u64 t_mod)
{
    simd::DivideRoundConsts c{};
    c.qk = qk;
    c.t_inv_qk = InvMod(t_mod % qk, qk);
    c.t_inv_qk_bar = ShoupPrecompute(c.t_inv_qk, qk);
    return c;
}

/** Complete @p c for target limb modulus @p qi (reducer @p red). */
void
DivideRoundLimb(simd::DivideRoundConsts &c, u64 qi, u64 t_mod,
                const BarrettReducer &red)
{
    c.qi = qi;
    c.qk_inv = InvMod(c.qk % qi, qi);
    c.qk_inv_bar = ShoupPrecompute(c.qk_inv, qi);
    c.t_mod_qi = t_mod % qi;
    c.t_mod_qi_bar = ShoupPrecompute(c.t_mod_qi, qi);
    c.mu_lo = red.mu_lo();
    c.mu_hi = red.mu_hi();
}

// ---------------------------------------------------------------------
// Shared Relinearize front half (stages 1-3): CRT digit decomposition,
// lazy forward NTT of the digits, evaluation-domain gadget
// accumulation. BatchRelinearize and BatchRelinModSwitch differ only in
// what happens after the accumulators are full.
// ---------------------------------------------------------------------

struct RelinNode {
    std::size_t level = 0;      // primes remaining
    std::size_t digit_off = 0;  // first digit index in the poly list
    const RelinKey::LevelKeys *keys = nullptr;
};

/** Digit j lift: d_j = [c2 * (Q_L/q_j)^{-1}]_{q_j} into the digit's own
 *  residue row (stage 1a; the broadcast to the other rows is 1b). */
struct DigitLiftTask {
    const RnsPoly *c2;
    RnsPoly *digit;
    std::size_t j;
    std::size_t level;
};

/** Digit broadcast: row l = [row j]_{q_l} (Barrett 64-bit reduce). */
struct DigitSpreadTask {
    RnsPoly *digit;
    std::size_t j;  // source row (the lifted digit)
    std::size_t l;  // destination row
};

/** Gadget inner-product accumulation for one (accumulator, limb) row. */
struct AccTask {
    RnsPoly *acc;
    const std::vector<RnsPoly> *keys;
    std::size_t digit_off;
    std::size_t level;
    std::size_t limb;
};

struct RelinCore {
    std::vector<RelinNode> *nodes;
    /** Scratch polynomials: digits first, then the 2-per-ciphertext
     *  gadget accumulators starting at @ref acc_off. */
    std::vector<RnsPoly *> *polys;
    std::size_t acc_off = 0;
};

/** @pre the caller holds a ScratchArena::OpScope on @p arena (which is
 *  ctx.scratch()) for the whole op — the arena owns every buffer this
 *  fills. Enforced by the thread-safety analysis via the REQUIRES
 *  clause on the arena capability. */
RelinCore
RelinGadgetAccumulate(const HeContext &ctx, const RelinKey &rk,
                      ScratchArena &arena,
                      std::span<const Ciphertext *const> in,
                      std::size_t min_primes, const char *op)
    HENTT_REQUIRES(arena.mutex())
{
    auto &nodes = arena.Buffer<RelinNode>();
    nodes.clear();
    std::size_t total_digits = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const Ciphertext *ct = in[i];
        if (ct->parts.size() != 3) {
            ThrowBatchArg(op, i, "relinearization expects degree 2");
        }
        for (const RnsPoly &part : ct->parts) {
            if (part.domain() != RnsPoly::Domain::kCoefficient) {
                ThrowBatchArg(op, i,
                              "relinearization expects coefficient "
                              "domain");
            }
        }
        RelinNode node;
        node.level = ct->parts[0].prime_count();
        if (node.level < min_primes) {
            ThrowBatchPrecondition(op, i,
                                   "modulus chain exhausted: fused "
                                   "relin-modswitch needs at least two "
                                   "primes");
        }
        node.keys = &rk.at_level(node.level);
        if (node.keys->b.size() != node.level) {
            ThrowBatchArg(op, i, "relin key level mismatch");
        }
        node.digit_off = total_digits;
        total_digits += node.level;
        nodes.push_back(node);
    }

    auto &polys = arena.Buffer<RnsPoly *>();
    polys.clear();
    for (const RelinNode &node : nodes) {
        const auto level = ctx.level_context(node.level);
        for (std::size_t j = 0; j < node.level; ++j) {
            polys.push_back(&arena.NextPoly(level, /*zero=*/false));
        }
    }

    // Stage 1a: CRT digit lift, one dispatch over (ciphertext, digit)
    // tasks; each task computes its digit's own residue row with one
    // Shoup row sweep.
    auto &lift_tasks = arena.Buffer<DigitLiftTask>();
    lift_tasks.clear();
    std::size_t max_degree = 1;
    for (std::size_t i = 0; i < in.size(); ++i) {
        for (std::size_t j = 0; j < nodes[i].level; ++j) {
            lift_tasks.push_back({&in[i]->parts[2],
                                  polys[nodes[i].digit_off + j], j,
                                  nodes[i].level});
            max_degree = std::max(max_degree, in[i]->parts[2].degree());
        }
    }
    AddElementwisePasses(lift_tasks.size());
    ParallelFor(lift_tasks.size(), max_degree, [&](std::size_t t) {
        const DigitLiftTask &task = lift_tasks[t];
        const RnsNttContext &level = task.digit->context();
        const u64 qj = level.basis().prime(task.j);
        const u64 q_tilde =
            InvMod(ctx.q_hat_level(task.level, task.j, task.j), qj);
        simd::Active().mul_shoup_rows(
            task.digit->row(task.j).data(), task.c2->row(task.j).data(),
            task.c2->degree(), q_tilde, ShoupPrecompute(q_tilde, qj), qj);
    });

    // Stage 1b: digit broadcast, one dispatch over (digit, other row)
    // tasks; each task Barrett-reduces the lifted row into another
    // residue row. Bit-identical to reducing per element: the lifted
    // value is strict (< q_j), so its own row needs no reduce pass.
    auto &spread_tasks = arena.Buffer<DigitSpreadTask>();
    spread_tasks.clear();
    for (std::size_t i = 0; i < in.size(); ++i) {
        for (std::size_t j = 0; j < nodes[i].level; ++j) {
            for (std::size_t l = 0; l < nodes[i].level; ++l) {
                if (l != j) {
                    spread_tasks.push_back(
                        {polys[nodes[i].digit_off + j], j, l});
                }
            }
        }
    }
    AddElementwisePasses(spread_tasks.size());
    ParallelFor(spread_tasks.size(), max_degree, [&](std::size_t t) {
        const DigitSpreadTask &task = spread_tasks[t];
        const RnsNttContext &level = task.digit->context();
        simd::Active().reduce_barrett_rows(
            task.digit->row(task.l).data(),
            task.digit->row(task.j).data(), task.digit->degree(),
            simd::Consts(level.reducer(task.l)));
    });

    // Stage 2: ONE lazy forward-NTT dispatch over every digit x limb —
    // the only forward transforms in the whole op (np^2 row transforms
    // per ciphertext; the coefficient-domain-key formulation paid
    // 4*np^2 by re-transforming keys and digits per product).
    auto &rows = arena.Buffer<RowTask>();
    rows.clear();
    for (std::size_t d = 0; d < total_digits; ++d) {
        RnsPoly *digit = polys[d];
        for (std::size_t l = 0; l < digit->prime_count(); ++l) {
            rows.push_back({&digit->context().engine(l),
                            digit->row(l).data(), digit->degree()});
        }
        max_degree = std::max(max_degree, digit->degree());
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t t) {
        rows[t].engine->ForwardLazy({rows[t].row, rows[t].n});
    });
    for (std::size_t d = 0; d < total_digits; ++d) {
        detail::RnsPolyBatchAccess::MarkEvaluation(*polys[d],
                                                   /*lazy=*/true);
    }

    // Stage 3: evaluation-domain gadget accumulation, one dispatch over
    // (ciphertext, accumulator part, limb) tasks; each task folds all
    // np digit x key products for its row with one Barrett reduction
    // per element (simd mul-accumulate rows).
    const std::size_t acc_off = polys.size();
    for (const RelinNode &node : nodes) {
        const auto level = ctx.level_context(node.level);
        polys.push_back(&arena.NextPoly(level, /*zero=*/true));
        polys.push_back(&arena.NextPoly(level, /*zero=*/true));
    }
    auto &acc_tasks = arena.Buffer<AccTask>();
    acc_tasks.clear();
    u64 acc_rows = 0;
    std::size_t max_work = 1;
    for (std::size_t i = 0; i < in.size(); ++i) {
        for (std::size_t part = 0; part < 2; ++part) {
            const std::vector<RnsPoly> &keys =
                part == 0 ? nodes[i].keys->b : nodes[i].keys->a;
            RnsPoly *acc = polys[acc_off + 2 * i + part];
            for (std::size_t l = 0; l < nodes[i].level; ++l) {
                acc_tasks.push_back(
                    {acc, &keys, nodes[i].digit_off, nodes[i].level, l});
                acc_rows += nodes[i].level;
                max_work = std::max(max_work,
                                    acc->degree() * nodes[i].level);
            }
        }
    }
    AddElementwisePasses(acc_rows);
    ParallelFor(acc_tasks.size(), max_work, [&](std::size_t t) {
        const AccTask &task = acc_tasks[t];
        const simd::BarrettConsts consts =
            simd::Consts(task.acc->context().reducer(task.limb));
        u64 *dst = task.acc->row(task.limb).data();
        for (std::size_t j = 0; j < task.level; ++j) {
            simd::Active().mul_acc_barrett_rows(
                dst, polys[task.digit_off + j]->row(task.limb).data(),
                (*task.keys)[j].row(task.limb).data(),
                task.acc->degree(), consts);
        }
    });
    for (std::size_t a = acc_off; a < polys.size(); ++a) {
        detail::RnsPolyBatchAccess::MarkEvaluation(*polys[a]);
    }

    return {&nodes, &polys, acc_off};
}

}  // namespace

void
BatchAdd(const HeContext &ctx, std::span<const Ciphertext *const> a,
         std::span<const Ciphertext *const> b,
         std::span<Ciphertext *const> out, bool subtract)
{
    CheckSpanLengths("BatchAdd", a.size(), b.size(), out.size());
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);

    // Element-wise task per (ciphertext, part, limb); the whole batch
    // is one pool dispatch. Outputs are copies of `a` combined in place
    // (out[i] may alias a[i], not b[i]). Lazy [0, 4p) parts (from
    // ToEvaluationLazy) reduce/fold exactly as RnsPoly::operator+=.
    auto &tasks = arena.Buffer<AddTask>();
    tasks.clear();
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < a.size(); ++i) {
        CheckPairCompatible("BatchAdd", i, *a[i], *b[i]);
        if (out[i] != a[i]) {
            *out[i] = *a[i];
        }
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Ciphertext &cb = *b[i];
        for (std::size_t j = 0; j < cb.parts.size(); ++j) {
            AppendAddTasks(tasks, out[i]->parts[j], cb.parts[j], max_n);
        }
    }
    RunAddTasks(tasks, max_n, subtract);
}

void
BatchMul(const HeContext &ctx, std::span<const Ciphertext *const> a,
         std::span<const Ciphertext *const> b,
         std::span<Ciphertext *const> out)
{
    CheckSpanLengths("BatchMul", a.size(), b.size(), out.size());
    const std::size_t m = a.size();
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);

    // Stage 0: working copies of every *distinct* input part, interned
    // by address into arena polys — a ciphertext feeding several
    // products in the batch (squaring included) is copied and
    // transformed exactly once. The copies also mean the inputs are
    // dead after this stage, so outputs may alias inputs freely.
    struct MulNode {
        std::size_t a0, a1, b0, b1;  // indices into `fwd`
    };
    auto &fwd = arena.Buffer<RnsPoly *>();
    fwd.clear();
    // Intern table: open addressing over the pooled slot vector (load
    // factor <= 1/2), so interning stays O(1) per part for arbitrarily
    // large batches without leaving the arena.
    struct InternSlot {
        const RnsPoly *part;
        std::size_t index;
    };
    auto &table = arena.Buffer<InternSlot>();
    std::size_t cap = 16;
    while (cap < 8 * m) {
        cap <<= 1;
    }
    table.assign(cap, {nullptr, 0});  // reuses capacity across calls
    const std::size_t mask = cap - 1;
    const auto intern = [&](const RnsPoly &part) {
        std::size_t probe =
            (reinterpret_cast<std::uintptr_t>(&part) >> 4) *
            std::size_t{0x9E3779B97F4A7C15ULL} & mask;
        while (true) {
            InternSlot &slot = table[probe];
            if (slot.part == &part) {
                return slot.index;
            }
            if (slot.part == nullptr) {
                const std::size_t index = fwd.size();
                slot = {&part, index};
                RnsPoly &copy = arena.NextPoly(
                    ctx.level_context(part.prime_count()),
                    /*zero=*/false);
                copy = part;  // reuses the pooled buffer's capacity
                fwd.push_back(&copy);
                return index;
            }
            probe = (probe + 1) & mask;
        }
    };
    auto &nodes = arena.Buffer<MulNode>();
    nodes.clear();
    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ca = *a[i];
        const Ciphertext &cb = *b[i];
        if (ca.parts.size() != 2 || cb.parts.size() != 2) {
            ThrowBatchArg(
                "BatchMul", i,
                "Mul expects degree-1 ciphertexts; relinearize first");
        }
        CheckPairCompatible("BatchMul", i, ca, cb);
        MulNode node;
        node.a0 = intern(ca.parts[0]);
        node.a1 = intern(ca.parts[1]);
        node.b0 = intern(cb.parts[0]);
        node.b1 = intern(cb.parts[1]);
        nodes.push_back(node);
    }

    // Stage 1: ONE lazy forward-NTT dispatch across every input part x
    // limb. Rows stay in [0, 4p) — the tensor stage's Barrett products
    // tolerate them (16p^2 fits u128; the fused cross term needs
    // 32p^2 < 2^128, guaranteed by HeParams' prime_bits <= 61 bound).
    auto &rows = arena.Buffer<RowTask>();
    rows.clear();
    std::size_t max_degree = 1;
    for (RnsPoly *poly : fwd) {
        if (poly->domain() != RnsPoly::Domain::kCoefficient) {
            continue;
        }
        for (std::size_t l = 0; l < poly->prime_count(); ++l) {
            rows.push_back({&poly->context().engine(l),
                            poly->row(l).data(), poly->degree()});
        }
        max_degree = std::max(max_degree, poly->degree());
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t t) {
        rows[t].engine->ForwardLazy({rows[t].row, rows[t].n});
    });
    for (RnsPoly *poly : fwd) {
        if (poly->domain() == RnsPoly::Domain::kCoefficient) {
            detail::RnsPolyBatchAccess::MarkEvaluation(*poly,
                                                       /*lazy=*/true);
        }
    }

    // Stage 2: ONE tensor dispatch per (ciphertext, limb); each task
    // fills the three result rows (c0 = a0 b0, c1 = a0 b1 + a1 b0,
    // c2 = a1 b1) straight into out[i] with one Barrett reduction per
    // output element (simd tensor kernel).
    struct TensorTask {
        const u64 *a0, *a1, *b0, *b1;
        u64 *c0, *c1, *c2;
        simd::BarrettConsts consts;
        std::size_t n;
    };
    auto &tensor = arena.Buffer<TensorTask>();
    tensor.clear();
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < m; ++i) {
        const MulNode &nd = nodes[i];
        const RnsPoly &fa0 = *fwd[nd.a0];
        const RnsNttContext &level = fa0.context();
        EnsureParts(*out[i], 3, ctx.level_context(fa0.prime_count()));
        for (std::size_t l = 0; l < fa0.prime_count(); ++l) {
            tensor.push_back({fa0.row(l).data(),
                              fwd[nd.a1]->row(l).data(),
                              fwd[nd.b0]->row(l).data(),
                              fwd[nd.b1]->row(l).data(),
                              out[i]->parts[0].row(l).data(),
                              out[i]->parts[1].row(l).data(),
                              out[i]->parts[2].row(l).data(),
                              simd::Consts(level.reducer(l)),
                              fa0.degree()});
            max_n = std::max(max_n, fa0.degree());
        }
    }
    AddElementwisePasses(3 * tensor.size());  // three result rows each
    ParallelFor(tensor.size(), max_n, [&](std::size_t t) {
        const TensorTask &task = tensor[t];
        simd::Active().tensor_rows(task.c0, task.c1, task.c2, task.a0,
                                   task.a1, task.b0, task.b1, task.n,
                                   task.consts);
    });
    for (std::size_t i = 0; i < m; ++i) {
        for (RnsPoly &part : out[i]->parts) {
            detail::RnsPolyBatchAccess::MarkEvaluation(part);
        }
    }

    // Stage 3: ONE inverse-NTT dispatch across all 3m result parts.
    rows.clear();
    for (std::size_t i = 0; i < m; ++i) {
        for (RnsPoly &part : out[i]->parts) {
            for (std::size_t l = 0; l < part.prime_count(); ++l) {
                rows.push_back({&part.context().engine(l),
                                part.row(l).data(), part.degree()});
            }
        }
    }
    ParallelFor(rows.size(), max_n, [&](std::size_t t) {
        rows[t].engine->Inverse({rows[t].row, rows[t].n});
    });
    for (std::size_t i = 0; i < m; ++i) {
        for (RnsPoly &part : out[i]->parts) {
            detail::RnsPolyBatchAccess::MarkCoefficient(part);
        }
    }
}

void
BatchRelinearize(const HeContext &ctx, const RelinKey &rk,
                 std::span<const Ciphertext *const> in,
                 std::span<Ciphertext *const> out)
{
    CheckSpanLengths("BatchRelinearize", in.size(), in.size(),
                     out.size());
    const std::size_t m = in.size();
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);
    const RelinCore core = RelinGadgetAccumulate(
        ctx, rk, arena, in, /*min_primes=*/1, "BatchRelinearize");
    auto &nodes = *core.nodes;
    auto &polys = *core.polys;

    // Stage 4: ONE inverse-NTT dispatch over the 2m accumulators.
    auto &rows = arena.Buffer<RowTask>();
    rows.clear();
    std::size_t max_degree = 1;
    for (std::size_t a = core.acc_off; a < polys.size(); ++a) {
        RnsPoly *acc = polys[a];
        for (std::size_t l = 0; l < acc->prime_count(); ++l) {
            rows.push_back({&acc->context().engine(l),
                            acc->row(l).data(), acc->degree()});
        }
        max_degree = std::max(max_degree, acc->degree());
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t t) {
        rows[t].engine->Inverse({rows[t].row, rows[t].n});
    });
    for (std::size_t a = core.acc_off; a < polys.size(); ++a) {
        detail::RnsPolyBatchAccess::MarkCoefficient(*polys[a]);
    }

    // Stage 5: fold the input's (c0, c1) into the output, one dispatch
    // writing straight into out[i] (out[i] may alias in[i]).
    struct FoldTask {
        u64 *dst;
        const u64 *acc;
        const u64 *src;
        u64 p;
        std::size_t n;
    };
    auto &folds = arena.Buffer<FoldTask>();
    folds.clear();
    for (std::size_t i = 0; i < m; ++i) {
        EnsureParts(*out[i], 2, ctx.level_context(nodes[i].level));
        for (std::size_t part = 0; part < 2; ++part) {
            RnsPoly &dst = out[i]->parts[part];
            const RnsPoly &acc = *polys[core.acc_off + 2 * i + part];
            const RnsPoly &src = in[i]->parts[part];
            const RnsBasis &basis = acc.context().basis();
            for (std::size_t l = 0; l < nodes[i].level; ++l) {
                folds.push_back({dst.row(l).data(), acc.row(l).data(),
                                 src.row(l).data(), basis.prime(l),
                                 dst.degree()});
            }
        }
    }
    AddElementwisePasses(folds.size());
    ParallelFor(folds.size(), max_degree, [&](std::size_t t) {
        const FoldTask &task = folds[t];
        simd::Active().add_rows(task.dst, task.acc, task.src, task.n,
                                task.p, /*fold_b=*/false);
    });
}

void
BatchRelinModSwitch(const HeContext &ctx, const RelinKey &rk,
                    std::span<const Ciphertext *const> in,
                    std::span<Ciphertext *const> out)
{
    CheckSpanLengths("BatchRelinModSwitch", in.size(), in.size(),
                     out.size());
    const std::size_t m = in.size();
    const u64 t_mod = ctx.params().plain_modulus;
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);
    const RelinCore core = RelinGadgetAccumulate(
        ctx, rk, arena, in, /*min_primes=*/2, "BatchRelinModSwitch");
    auto &nodes = *core.nodes;
    auto &polys = *core.polys;

    // Fused inverse stage: ONE dispatch over the 2m accumulators x
    // limbs where each task inverse-transforms its row and then, while
    // the row is still cache-hot, folds in the input part and applies
    // the modulus-switch alpha rescale (alpha = q_k mod t) as an
    // epilogue of the same loop (the simd fold_rescale kernel). The
    // unfused chain pays two standalone sweeps (the (c0, c1) fold and
    // the alpha pass) for exactly these values — here they never leave
    // the inverse dispatch, which is why NttOpCounts::elementwise does
    // not grow.
    struct FusedInvTask {
        const NttEngine *engine;
        u64 *row;        // accumulator row, in place
        const u64 *src;  // matching input-part row
        u64 p;
        u64 s, s_bar;    // alpha mod p, Shoup companion
        std::size_t n;
    };
    auto &fused = arena.Buffer<FusedInvTask>();
    fused.clear();
    std::size_t max_degree = 1;
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t level = nodes[i].level;
        const RnsBasis &basis = in[i]->parts[0].context().basis();
        const u64 qk = basis.prime(level - 1);
        const u64 alpha = qk % t_mod;
        for (std::size_t part = 0; part < 2; ++part) {
            RnsPoly &acc = *polys[core.acc_off + 2 * i + part];
            const RnsPoly &src = in[i]->parts[part];
            for (std::size_t l = 0; l < level; ++l) {
                const u64 p = basis.prime(l);
                const u64 s = alpha % p;
                fused.push_back({&acc.context().engine(l),
                                 acc.row(l).data(), src.row(l).data(), p,
                                 s, ShoupPrecompute(s, p), acc.degree()});
            }
            max_degree = std::max(max_degree, acc.degree());
        }
    }
    ParallelFor(fused.size(), max_degree, [&](std::size_t t) {
        const FusedInvTask &task = fused[t];
        task.engine->Inverse({task.row, task.n});
        simd::Active().fold_rescale_rows(task.row, task.src, task.n,
                                         task.p, task.s, task.s_bar);
    });
    for (std::size_t a = core.acc_off; a < polys.size(); ++a) {
        detail::RnsPolyBatchAccess::MarkCoefficient(*polys[a]);
    }

    // Divide-and-round into out at the next level — the only standalone
    // element-wise sweep left in the fused op, shared with
    // BatchModSwitch through the simd divide_round kernel. The
    // InvMod/Shoup constants are hoisted into the task list (InvMod is
    // a PowMod of native divisions — the exact path the hot loops exist
    // to avoid); the dropped top row is read from the accumulator and
    // never written anywhere.
    auto &switches = arena.Buffer<RescaleTask>();
    switches.clear();
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t level = nodes[i].level;
        const auto next = ctx.level_context(level - 1);
        EnsureParts(*out[i], 2, next);
        const RnsPoly &acc0 = *polys[core.acc_off + 2 * i];
        const RnsBasis &basis = acc0.context().basis();
        const simd::DivideRoundConsts top_consts =
            DivideRoundTop(basis.prime(level - 1), t_mod);
        for (std::size_t l = 0; l + 1 < level; ++l) {
            RescaleTask task;
            task.c = top_consts;
            DivideRoundLimb(task.c, basis.prime(l), t_mod,
                            next->reducer(l));
            for (std::size_t part = 0; part < 2; ++part) {
                const RnsPoly &acc =
                    *polys[core.acc_off + 2 * i + part];
                task.src = acc.row(l).data();
                task.top = acc.row(level - 1).data();
                task.dst = out[i]->parts[part].row(l).data();
                task.n = acc.degree();
                switches.push_back(task);
            }
        }
    }
    AddElementwisePasses(switches.size());
    ParallelFor(switches.size(), max_degree, [&](std::size_t t) {
        const RescaleTask &task = switches[t];
        simd::Active().divide_round_rows(task.dst, task.src, task.top,
                                         task.n, task.c);
    });
}

void
BatchModSwitch(const HeContext &ctx, std::span<const Ciphertext *const> in,
               std::span<Ciphertext *const> out)
{
    CheckSpanLengths("BatchModSwitch", in.size(), in.size(),
                     out.size());
    const std::size_t m = in.size();
    const u64 t_mod = ctx.params().plain_modulus;
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);

    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ct = *in[i];
        if (ct.parts.at(0).prime_count() < 2) {
            ThrowBatchPrecondition(
                "BatchModSwitch", i,
                "modulus chain exhausted: cannot switch below one "
                "prime");
        }
        for (const RnsPoly &part : ct.parts) {
            if (part.domain() != RnsPoly::Domain::kCoefficient) {
                ThrowBatchArg(
                    "BatchModSwitch", i,
                    "modulus switch expects coefficient domain");
            }
        }
    }

    // Stage 1: alpha pre-scaling (alpha = q_k mod t makes the switch
    // plaintext-preserving) into arena working copies, one dispatch
    // over all parts x limbs. The copies free the inputs, so outputs
    // may alias them.
    auto &scaled = arena.Buffer<RnsPoly *>();
    scaled.clear();
    struct MsNode {
        std::size_t np_cur;
        std::size_t part_count;
    };
    auto &ms_nodes = arena.Buffer<MsNode>();
    ms_nodes.clear();
    struct ScaleTask {
        u64 *row;
        u64 p;
        u64 s, s_bar;
        std::size_t n;
    };
    auto &scale_tasks = arena.Buffer<ScaleTask>();
    scale_tasks.clear();
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t np_cur = in[i]->parts[0].prime_count();
        const u64 qk = in[i]->parts[0].context().basis().prime(np_cur - 1);
        const u64 alpha = qk % t_mod;
        ms_nodes.push_back({np_cur, in[i]->parts.size()});
        for (const RnsPoly &part : in[i]->parts) {
            RnsPoly &copy =
                arena.NextPoly(ctx.level_context(np_cur), /*zero=*/false);
            copy = part;
            scaled.push_back(&copy);
            const RnsBasis &basis = copy.context().basis();
            for (std::size_t l = 0; l < copy.prime_count(); ++l) {
                const u64 p = basis.prime(l);
                const u64 s = alpha % p;
                scale_tasks.push_back({copy.row(l).data(), p, s,
                                       ShoupPrecompute(s, p),
                                       copy.degree()});
                max_n = std::max(max_n, copy.degree());
            }
        }
    }
    AddElementwisePasses(scale_tasks.size());
    ParallelFor(scale_tasks.size(), max_n, [&](std::size_t t) {
        const ScaleTask &task = scale_tasks[t];
        simd::Active().mul_shoup_rows(task.row, task.row, task.n,
                                      task.s, task.s_bar, task.p);
    });

    // Stage 2: divide-and-round straight into out at the next level,
    // one dispatch over all parts x target limbs — the same simd
    // kernel (and constants) as the fused RelinModSwitch epilogue.
    auto &switch_tasks = arena.Buffer<RescaleTask>();
    switch_tasks.clear();
    {
        // The working copies (and ms_nodes) carry everything needed
        // from here on, so out[i] may alias any input. The
        // InvMod/Shoup constants depend only on (ciphertext, target
        // limb), so they are computed once per limb and shared across
        // the parts (InvMod is a PowMod of native divisions — the
        // exact path the hot loops exist to avoid).
        std::size_t idx = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t np_cur = ms_nodes[i].np_cur;
            const auto next = ctx.level_context(np_cur - 1);
            const std::size_t part_count = ms_nodes[i].part_count;
            EnsureParts(*out[i], part_count, next);
            const RnsBasis &basis =
                scaled[idx]->context().basis();
            const simd::DivideRoundConsts top_consts =
                DivideRoundTop(basis.prime(np_cur - 1), t_mod);
            for (std::size_t l = 0; l + 1 < np_cur; ++l) {
                RescaleTask task;
                task.c = top_consts;
                DivideRoundLimb(task.c, basis.prime(l), t_mod,
                                next->reducer(l));
                for (std::size_t j = 0; j < part_count; ++j) {
                    const RnsPoly &src = *scaled[idx + j];
                    task.src = src.row(l).data();
                    task.top = src.row(np_cur - 1).data();
                    task.dst = out[i]->parts[j].row(l).data();
                    task.n = src.degree();
                    switch_tasks.push_back(task);
                }
            }
            idx += part_count;
        }
    }
    AddElementwisePasses(switch_tasks.size());
    ParallelFor(switch_tasks.size(), max_n, [&](std::size_t t) {
        const RescaleTask &task = switch_tasks[t];
        simd::Active().divide_round_rows(task.dst, task.src, task.top,
                                         task.n, task.c);
    });
}

}  // namespace hentt::he
