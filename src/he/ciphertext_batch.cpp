#include "he/ciphertext_batch.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/modarith.h"
#include "common/thread_pool.h"

namespace hentt::he {

namespace detail {

/** The one sanctioned path to RnsPoly::OverrideDomain: the batch
 *  kernels fill evaluation-domain rows externally and relabel here. */
struct RnsPolyBatchAccess {
    static void
    MarkEvaluation(RnsPoly &poly)
    {
        poly.OverrideDomain(RnsPoly::Domain::kEvaluation);
    }
};

}  // namespace detail

namespace {

/**
 * Element-wise add/sub task over one limb row; the shared flattening
 * unit of BatchAdd, BatchRelinearize's final fold-in, and friends.
 * `fold_src` folds lazy [0, 4p) source rows on the fly (the
 * destination must already be fully reduced).
 */
struct AddTask {
    u64 *dst;
    const u64 *src;
    u64 p;
    std::size_t n;
    bool fold_src;
};

/** Append one task per limb for dst[i] = dst[i] +/- src[i]. The
 *  destination is reduced first when lazy; lazy sources fold per
 *  element. */
void
AppendAddTasks(std::vector<AddTask> &tasks, RnsPoly &dst,
               const RnsPoly &src, std::size_t &max_n)
{
    dst.ReduceLazy();
    const RnsBasis &basis = src.context().basis();
    for (std::size_t l = 0; l < src.prime_count(); ++l) {
        tasks.push_back({dst.row(l).data(), src.row(l).data(),
                         basis.prime(l), src.degree(), src.lazy()});
        max_n = std::max(max_n, src.degree());
    }
}

/** One pool dispatch over the whole task list. */
void
RunAddTasks(const std::vector<AddTask> &tasks, std::size_t max_n,
            bool subtract)
{
    ParallelFor(tasks.size(), max_n, [&](std::size_t t) {
        const AddTask &task = tasks[t];
        for (std::size_t k = 0; k < task.n; ++k) {
            const u64 s = task.fold_src ? FoldLazy(task.src[k], task.p)
                                        : task.src[k];
            task.dst[k] = subtract ? SubMod(task.dst[k], s, task.p)
                                   : AddMod(task.dst[k], s, task.p);
        }
    });
}

void
CheckSpanLengths(std::size_t a, std::size_t b, std::size_t out)
{
    if (a != b || a != out) {
        throw std::invalid_argument("batch spans must have equal length");
    }
}

/** Throw unless the two ciphertexts share degree, level, and domain. */
void
CheckPairCompatible(const Ciphertext &a, const Ciphertext &b)
{
    if (a.parts.size() != b.parts.size()) {
        throw std::invalid_argument("ciphertext degrees differ");
    }
    for (std::size_t j = 0; j < a.parts.size(); ++j) {
        if (&a.parts[j].context() != &b.parts[j].context()) {
            throw std::invalid_argument(
                "ciphertexts from different levels/contexts");
        }
        if (a.parts[j].domain() != b.parts[j].domain()) {
            throw std::invalid_argument(
                "ciphertext parts in different domains");
        }
    }
}

}  // namespace

void
BatchAdd(const HeContext &ctx, std::span<const Ciphertext *const> a,
         std::span<const Ciphertext *const> b,
         std::span<Ciphertext *const> out, bool subtract)
{
    (void)ctx;
    CheckSpanLengths(a.size(), b.size(), out.size());

    // Element-wise task per (ciphertext, part, limb); the whole batch
    // is one pool dispatch. Outputs are copies of `a` combined in place
    // (out[i] may alias a[i], not b[i]). Lazy [0, 4p) parts (from
    // ToEvaluationLazy) reduce/fold exactly as RnsPoly::operator+=.
    std::vector<AddTask> tasks;
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < a.size(); ++i) {
        CheckPairCompatible(*a[i], *b[i]);
        if (out[i] != a[i]) {
            *out[i] = *a[i];
        }
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Ciphertext &cb = *b[i];
        for (std::size_t j = 0; j < cb.parts.size(); ++j) {
            AppendAddTasks(tasks, out[i]->parts[j], cb.parts[j], max_n);
        }
    }
    RunAddTasks(tasks, max_n, subtract);
}

void
BatchMul(const HeContext &ctx, std::span<const Ciphertext *const> a,
         std::span<const Ciphertext *const> b,
         std::span<Ciphertext *const> out)
{
    CheckSpanLengths(a.size(), b.size(), out.size());
    const std::size_t m = a.size();

    // Stage 0: working copies of every *distinct* input part, interned
    // by address — a ciphertext feeding several products in the batch
    // (squaring included) is copied and transformed exactly once.
    struct Node {
        std::size_t a0, a1, b0, b1;  // indices into `fwd`
    };
    std::vector<RnsPoly> fwd;
    fwd.reserve(4 * m);
    std::unordered_map<const RnsPoly *, std::size_t> slots;
    const auto intern = [&](const RnsPoly &part) {
        const auto [it, inserted] = slots.try_emplace(&part, fwd.size());
        if (inserted) {
            fwd.push_back(part);
        }
        return it->second;
    };
    std::vector<Node> nodes(m);
    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ca = *a[i];
        const Ciphertext &cb = *b[i];
        if (ca.parts.size() != 2 || cb.parts.size() != 2) {
            throw std::invalid_argument(
                "Mul expects degree-1 ciphertexts; relinearize first");
        }
        CheckPairCompatible(ca, cb);
        nodes[i].a0 = intern(ca.parts[0]);
        nodes[i].a1 = intern(ca.parts[1]);
        nodes[i].b0 = intern(cb.parts[0]);
        nodes[i].b1 = intern(cb.parts[1]);
    }

    // Stage 1: ONE lazy forward-NTT dispatch across every input part x
    // limb. Rows stay in [0, 4p) — the tensor stage's Barrett products
    // tolerate them (16p^2 fits u128; the fused cross term needs
    // 32p^2 < 2^128, guaranteed by HeParams' prime_bits <= 61 bound).
    std::vector<RnsPoly *> pending;
    pending.reserve(fwd.size());
    for (RnsPoly &poly : fwd) {
        if (poly.domain() == RnsPoly::Domain::kCoefficient) {
            pending.push_back(&poly);
        }
    }
    RnsPoly::BatchToEvaluation(pending, /*lazy=*/true);

    // Stage 2: ONE tensor dispatch per (ciphertext, limb); each task
    // fills the three result rows (c0 = a0 b0, c1 = a0 b1 + a1 b0,
    // c2 = a1 b1) with one Barrett reduction per output element.
    std::vector<Ciphertext> results(m);
    for (std::size_t i = 0; i < m; ++i) {
        const auto level =
            ctx.level_context(a[i]->parts[0].prime_count());
        results[i].parts.assign(3, RnsPoly(level));
    }
    struct TensorTask {
        const u64 *a0, *a1, *b0, *b1;
        u64 *c0, *c1, *c2;
        const BarrettReducer *red;
        std::size_t n;
    };
    std::vector<TensorTask> tensor;
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < m; ++i) {
        const Node &nd = nodes[i];
        const RnsNttContext &level = fwd[nd.a0].context();
        for (std::size_t l = 0; l < fwd[nd.a0].prime_count(); ++l) {
            tensor.push_back({fwd[nd.a0].row(l).data(),
                              fwd[nd.a1].row(l).data(),
                              fwd[nd.b0].row(l).data(),
                              fwd[nd.b1].row(l).data(),
                              results[i].parts[0].row(l).data(),
                              results[i].parts[1].row(l).data(),
                              results[i].parts[2].row(l).data(),
                              &level.reducer(l), fwd[nd.a0].degree()});
            max_n = std::max(max_n, fwd[nd.a0].degree());
        }
    }
    ParallelFor(tensor.size(), max_n, [&](std::size_t t) {
        const TensorTask &task = tensor[t];
        for (std::size_t k = 0; k < task.n; ++k) {
            task.c0[k] = task.red->MulMod(task.a0[k], task.b0[k]);
            task.c1[k] =
                task.red->Reduce(Mul64Wide(task.a0[k], task.b1[k]) +
                                 Mul64Wide(task.a1[k], task.b0[k]));
            task.c2[k] = task.red->MulMod(task.a1[k], task.b1[k]);
        }
    });
    for (Ciphertext &result : results) {
        for (RnsPoly &part : result.parts) {
            detail::RnsPolyBatchAccess::MarkEvaluation(part);
        }
    }

    // Stage 3: ONE inverse-NTT dispatch across all 3m result parts.
    std::vector<RnsPoly *> inv;
    inv.reserve(3 * m);
    for (Ciphertext &result : results) {
        for (RnsPoly &part : result.parts) {
            inv.push_back(&part);
        }
    }
    RnsPoly::BatchToCoefficient(inv);

    for (std::size_t i = 0; i < m; ++i) {
        *out[i] = std::move(results[i]);
    }
}

void
BatchRelinearize(const HeContext &ctx, const RelinKey &rk,
                 std::span<const Ciphertext *const> in,
                 std::span<Ciphertext *const> out)
{
    CheckSpanLengths(in.size(), in.size(), out.size());
    const std::size_t m = in.size();

    struct Node {
        std::size_t level = 0;       // primes remaining
        std::size_t digit_off = 0;   // first digit index in `digits`
        const RelinKey::LevelKeys *keys = nullptr;
    };
    std::vector<Node> nodes(m);
    std::size_t total_digits = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ct = *in[i];
        if (ct.parts.size() != 3) {
            throw std::invalid_argument("relinearization expects degree 2");
        }
        for (const RnsPoly &part : ct.parts) {
            if (part.domain() != RnsPoly::Domain::kCoefficient) {
                throw std::invalid_argument(
                    "relinearization expects coefficient domain");
            }
        }
        nodes[i].level = ct.parts[0].prime_count();
        nodes[i].keys = &rk.at_level(nodes[i].level);
        if (nodes[i].keys->b.size() != nodes[i].level) {
            throw std::invalid_argument("relin key level mismatch");
        }
        nodes[i].digit_off = total_digits;
        total_digits += nodes[i].level;
    }

    std::vector<RnsPoly> digits;
    digits.reserve(total_digits);
    for (std::size_t i = 0; i < m; ++i) {
        const auto level = ctx.level_context(nodes[i].level);
        for (std::size_t j = 0; j < nodes[i].level; ++j) {
            digits.emplace_back(level);
        }
    }

    // Stage 1: CRT digit decomposition, one dispatch per batch over
    // (ciphertext, digit) tasks. Digit j is the word-sized value
    // d_j = [c2 * (Q_L/q_j)^{-1}]_{q_j} lifted into every RNS row
    // through the level's Barrett reducers.
    struct DigitTask {
        const RnsPoly *c2;
        RnsPoly *digit;
        std::size_t j;
        std::size_t level;
    };
    std::vector<DigitTask> digit_tasks;
    digit_tasks.reserve(total_digits);
    std::size_t max_work = 1;
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < nodes[i].level; ++j) {
            digit_tasks.push_back({&in[i]->parts[2],
                                   &digits[nodes[i].digit_off + j], j,
                                   nodes[i].level});
            max_work = std::max(max_work,
                                in[i]->parts[2].degree() * nodes[i].level);
        }
    }
    ParallelFor(digit_tasks.size(), max_work, [&](std::size_t t) {
        const DigitTask &task = digit_tasks[t];
        const RnsNttContext &level = task.digit->context();
        const u64 qj = level.basis().prime(task.j);
        const u64 q_tilde =
            InvMod(ctx.q_hat_level(task.level, task.j, task.j), qj);
        const u64 q_tilde_bar = ShoupPrecompute(q_tilde, qj);
        const std::span<const u64> src = task.c2->row(task.j);
        for (std::size_t k = 0; k < task.c2->degree(); ++k) {
            const u64 v = MulModShoup(src[k], q_tilde, q_tilde_bar, qj);
            for (std::size_t l = 0; l < task.level; ++l) {
                task.digit->row(l)[k] = level.reducer(l).Reduce(v);
            }
        }
    });

    // Stage 2: ONE lazy forward-NTT dispatch over every digit x limb —
    // the only forward transforms in the whole op (np^2 row transforms
    // per ciphertext; the coefficient-domain-key formulation paid
    // 4*np^2 by re-transforming keys and digits per product).
    std::vector<RnsPoly *> dptrs;
    dptrs.reserve(total_digits);
    for (RnsPoly &digit : digits) {
        dptrs.push_back(&digit);
    }
    RnsPoly::BatchToEvaluation(dptrs, /*lazy=*/true);

    // Stage 3: evaluation-domain gadget accumulation, one dispatch over
    // (ciphertext, accumulator part, limb) tasks; each task folds all
    // np digit x key products for its row with one Barrett reduction
    // per element.
    std::vector<Ciphertext> results(m);
    for (std::size_t i = 0; i < m; ++i) {
        const auto level = ctx.level_context(nodes[i].level);
        results[i].parts.assign(2, RnsPoly(level));
    }
    struct AccTask {
        RnsPoly *acc;
        const std::vector<RnsPoly> *keys;
        std::size_t digit_off;
        std::size_t level;
        std::size_t limb;
    };
    std::vector<AccTask> acc_tasks;
    acc_tasks.reserve(2 * total_digits);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t part = 0; part < 2; ++part) {
            const std::vector<RnsPoly> &keys =
                part == 0 ? nodes[i].keys->b : nodes[i].keys->a;
            for (std::size_t l = 0; l < nodes[i].level; ++l) {
                acc_tasks.push_back({&results[i].parts[part], &keys,
                                     nodes[i].digit_off, nodes[i].level,
                                     l});
            }
        }
    }
    ParallelFor(acc_tasks.size(), max_work, [&](std::size_t t) {
        const AccTask &task = acc_tasks[t];
        const BarrettReducer &red =
            task.acc->context().reducer(task.limb);
        const std::span<u64> dst = task.acc->row(task.limb);
        for (std::size_t j = 0; j < task.level; ++j) {
            const std::span<const u64> dj =
                digits[task.digit_off + j].row(task.limb);
            const std::span<const u64> kj =
                (*task.keys)[j].row(task.limb);
            for (std::size_t k = 0; k < dst.size(); ++k) {
                dst[k] = red.MulAddMod(dj[k], kj[k], dst[k]);
            }
        }
    });
    for (Ciphertext &result : results) {
        for (RnsPoly &part : result.parts) {
            detail::RnsPolyBatchAccess::MarkEvaluation(part);
        }
    }

    // Stage 4: ONE inverse-NTT dispatch over the 2m accumulators.
    std::vector<RnsPoly *> inv;
    inv.reserve(2 * m);
    for (Ciphertext &result : results) {
        for (RnsPoly &part : result.parts) {
            inv.push_back(&part);
        }
    }
    RnsPoly::BatchToCoefficient(inv);

    // Stage 5: fold in the input's (c0, c1), one dispatch.
    std::vector<AddTask> add_tasks;
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t part = 0; part < 2; ++part) {
            AppendAddTasks(add_tasks, results[i].parts[part],
                           in[i]->parts[part], max_n);
        }
    }
    RunAddTasks(add_tasks, max_n, /*subtract=*/false);

    for (std::size_t i = 0; i < m; ++i) {
        *out[i] = std::move(results[i]);
    }
}

void
BatchModSwitch(const HeContext &ctx, std::span<const Ciphertext *const> in,
               std::span<Ciphertext *const> out)
{
    CheckSpanLengths(in.size(), in.size(), out.size());
    const std::size_t m = in.size();
    const u64 t_mod = ctx.params().plain_modulus;

    std::size_t total_parts = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ct = *in[i];
        if (ct.parts.at(0).prime_count() < 2) {
            throw std::invalid_argument(
                "cannot modulus-switch below one prime");
        }
        for (const RnsPoly &part : ct.parts) {
            if (part.domain() != RnsPoly::Domain::kCoefficient) {
                throw std::invalid_argument(
                    "modulus switch expects coefficient domain");
            }
        }
        total_parts += ct.parts.size();
    }

    // Stage 1: alpha pre-scaling (alpha = q_k mod t makes the switch
    // plaintext-preserving) into working copies, one dispatch over all
    // parts x limbs.
    std::vector<RnsPoly> scaled;
    scaled.reserve(total_parts);
    for (std::size_t i = 0; i < m; ++i) {
        for (const RnsPoly &part : in[i]->parts) {
            scaled.push_back(part);
        }
    }
    struct ScaleTask {
        u64 *row;
        u64 p;
        u64 alpha;
        std::size_t n;
    };
    std::vector<ScaleTask> scale_tasks;
    std::size_t max_n = 1;
    {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t np_cur = in[i]->parts[0].prime_count();
            const u64 qk =
                in[i]->parts[0].context().basis().prime(np_cur - 1);
            const u64 alpha = qk % t_mod;
            for (std::size_t j = 0; j < in[i]->parts.size(); ++j) {
                RnsPoly &part = scaled[idx++];
                const RnsBasis &basis = part.context().basis();
                for (std::size_t l = 0; l < part.prime_count(); ++l) {
                    scale_tasks.push_back({part.row(l).data(),
                                           basis.prime(l), alpha,
                                           part.degree()});
                    max_n = std::max(max_n, part.degree());
                }
            }
        }
    }
    ParallelFor(scale_tasks.size(), max_n, [&](std::size_t t) {
        const ScaleTask &task = scale_tasks[t];
        const u64 s = task.alpha % task.p;
        const u64 s_bar = ShoupPrecompute(s, task.p);
        for (std::size_t k = 0; k < task.n; ++k) {
            task.row[k] = MulModShoup(task.row[k], s, s_bar, task.p);
        }
    });

    // Stage 2: divide-and-round, one dispatch over all parts x target
    // limbs. delta = t * [c_k * t^{-1}]_{q_k}, centered, satisfies
    // delta == c (mod q_k) and delta == 0 (mod t), so (c - delta) / q_k
    // is exact and plaintext-clean. The InvMod/Shoup constants depend
    // only on the ciphertext's level, so they are hoisted out of the
    // parallel tasks (InvMod is a PowMod of native divisions — the
    // exact path the hot loops exist to avoid).
    struct LevelConsts {
        u64 qk = 0;
        u64 t_inv_qk = 0, t_inv_qk_bar = 0;
        std::vector<u64> qk_inv, qk_inv_bar;        // per target limb
        std::vector<u64> t_mod_qi, t_mod_qi_bar;    // per target limb
    };
    std::vector<LevelConsts> consts(m);
    for (std::size_t i = 0; i < m; ++i) {
        const RnsBasis &basis = in[i]->parts[0].context().basis();
        const std::size_t np_cur = in[i]->parts[0].prime_count();
        LevelConsts &c = consts[i];
        c.qk = basis.prime(np_cur - 1);
        c.t_inv_qk = InvMod(t_mod % c.qk, c.qk);
        c.t_inv_qk_bar = ShoupPrecompute(c.t_inv_qk, c.qk);
        for (std::size_t l = 0; l + 1 < np_cur; ++l) {
            const u64 qi = basis.prime(l);
            c.qk_inv.push_back(InvMod(c.qk % qi, qi));
            c.qk_inv_bar.push_back(ShoupPrecompute(c.qk_inv[l], qi));
            c.t_mod_qi.push_back(t_mod % qi);
            c.t_mod_qi_bar.push_back(ShoupPrecompute(c.t_mod_qi[l], qi));
        }
    }

    std::vector<Ciphertext> results(m);
    struct SwitchTask {
        const RnsPoly *src;      // alpha-scaled part at the old level
        RnsPoly *dst;            // part at the new level
        const LevelConsts *consts;
        std::size_t i;           // target limb
    };
    std::vector<SwitchTask> switch_tasks;
    {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t np_cur = in[i]->parts[0].prime_count();
            const auto next = ctx.level_context(np_cur - 1);
            results[i].parts.assign(in[i]->parts.size(), RnsPoly(next));
            for (std::size_t j = 0; j < in[i]->parts.size(); ++j) {
                const RnsPoly &src = scaled[idx++];
                for (std::size_t l = 0; l + 1 < np_cur; ++l) {
                    switch_tasks.push_back(
                        {&src, &results[i].parts[j], &consts[i], l});
                }
            }
        }
    }
    ParallelFor(switch_tasks.size(), max_n, [&](std::size_t t) {
        const SwitchTask &task = switch_tasks[t];
        const RnsBasis &basis = task.src->context().basis();
        const std::size_t k_top = task.src->prime_count() - 1;
        const LevelConsts &c = *task.consts;
        const u64 qk = c.qk;
        const u64 t_inv_qk = c.t_inv_qk;
        const u64 t_inv_qk_bar = c.t_inv_qk_bar;
        const u64 qi = basis.prime(task.i);
        const BarrettReducer &red_qi = task.dst->context().reducer(task.i);
        const u64 qk_inv = c.qk_inv[task.i];
        const u64 qk_inv_bar = c.qk_inv_bar[task.i];
        const u64 t_mod_qi = c.t_mod_qi[task.i];
        const u64 t_mod_qi_bar = c.t_mod_qi_bar[task.i];
        const std::span<const u64> top = task.src->row(k_top);
        const std::span<const u64> src = task.src->row(task.i);
        const std::span<u64> dst = task.dst->row(task.i);
        for (std::size_t idx = 0; idx < dst.size(); ++idx) {
            const u64 u =
                MulModShoup(top[idx], t_inv_qk, t_inv_qk_bar, qk);
            u64 delta_mod_qi;
            if (u <= qk / 2) {
                delta_mod_qi = MulModShoup(red_qi.Reduce(u), t_mod_qi,
                                           t_mod_qi_bar, qi);
            } else {
                const u64 v = qk - u;  // delta = -t * v
                const u64 pos = MulModShoup(red_qi.Reduce(v), t_mod_qi,
                                            t_mod_qi_bar, qi);
                delta_mod_qi = pos == 0 ? 0 : qi - pos;
            }
            const u64 diff = SubMod(src[idx], delta_mod_qi, qi);
            dst[idx] = MulModShoup(diff, qk_inv, qk_inv_bar, qi);
        }
    });

    for (std::size_t i = 0; i < m; ++i) {
        *out[i] = std::move(results[i]);
    }
}

}  // namespace hentt::he
