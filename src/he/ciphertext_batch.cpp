#include "he/ciphertext_batch.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/modarith.h"
#include "common/thread_pool.h"

namespace hentt::he {

namespace detail {

/** The one sanctioned path to RnsPoly::OverrideDomain: the batch
 *  kernels fill rows through external dispatches and relabel here. */
struct RnsPolyBatchAccess {
    static void
    MarkEvaluation(RnsPoly &poly, bool lazy = false)
    {
        poly.OverrideDomain(RnsPoly::Domain::kEvaluation, lazy);
    }

    static void
    MarkCoefficient(RnsPoly &poly)
    {
        poly.OverrideDomain(RnsPoly::Domain::kCoefficient);
    }
};

}  // namespace detail

namespace {

/**
 * Element-wise add/sub task over one limb row; the shared flattening
 * unit of BatchAdd and friends. `fold_src` folds lazy [0, 4p) source
 * rows on the fly (the destination must already be fully reduced).
 */
struct AddTask {
    u64 *dst;
    const u64 *src;
    u64 p;
    std::size_t n;
    bool fold_src;
};

/** Append one task per limb for dst[i] = dst[i] +/- src[i]. The
 *  destination is reduced first when lazy; lazy sources fold per
 *  element. */
void
AppendAddTasks(std::vector<AddTask> &tasks, RnsPoly &dst,
               const RnsPoly &src, std::size_t &max_n)
{
    dst.ReduceLazy();
    const RnsBasis &basis = src.context().basis();
    for (std::size_t l = 0; l < src.prime_count(); ++l) {
        tasks.push_back({dst.row(l).data(), src.row(l).data(),
                         basis.prime(l), src.degree(), src.lazy()});
        max_n = std::max(max_n, src.degree());
    }
}

/** One pool dispatch over the whole task list. */
void
RunAddTasks(const std::vector<AddTask> &tasks, std::size_t max_n,
            bool subtract)
{
    AddElementwisePasses(tasks.size());
    ParallelFor(tasks.size(), max_n, [&](std::size_t t) {
        const AddTask &task = tasks[t];
        for (std::size_t k = 0; k < task.n; ++k) {
            const u64 s = task.fold_src ? FoldLazy(task.src[k], task.p)
                                        : task.src[k];
            task.dst[k] = subtract ? SubMod(task.dst[k], s, task.p)
                                   : AddMod(task.dst[k], s, task.p);
        }
    });
}

void
CheckSpanLengths(std::size_t a, std::size_t b, std::size_t out)
{
    if (a != b || a != out) {
        throw std::invalid_argument("batch spans must have equal length");
    }
}

/** Throw unless the two ciphertexts share degree, level, and domain. */
void
CheckPairCompatible(const Ciphertext &a, const Ciphertext &b)
{
    if (a.parts.size() != b.parts.size()) {
        throw std::invalid_argument("ciphertext degrees differ");
    }
    for (std::size_t j = 0; j < a.parts.size(); ++j) {
        if (&a.parts[j].context() != &b.parts[j].context()) {
            throw std::invalid_argument(
                "ciphertexts from different levels/contexts");
        }
        if (a.parts[j].domain() != b.parts[j].domain()) {
            throw std::invalid_argument(
                "ciphertext parts in different domains");
        }
    }
}

/**
 * Shape @p ct as @p count coefficient-domain parts at @p level, reusing
 * the existing part buffers (RnsPoly::ResetScratch) so steady-state
 * output reuse allocates nothing. Row contents are stale; the caller
 * must overwrite every element of every row.
 */
void
EnsureParts(Ciphertext &ct, std::size_t count,
            const std::shared_ptr<const RnsNttContext> &level)
{
    while (ct.parts.size() > count) {
        ct.parts.pop_back();
    }
    for (RnsPoly &part : ct.parts) {
        part.ResetScratch(level, /*zero=*/false);
    }
    ct.parts.reserve(count);
    while (ct.parts.size() < count) {
        ct.parts.emplace_back(level);
    }
}

// ---------------------------------------------------------------------
// Shared Relinearize front half (stages 1-3): CRT digit decomposition,
// lazy forward NTT of the digits, evaluation-domain gadget
// accumulation. BatchRelinearize and BatchRelinModSwitch differ only in
// what happens after the accumulators are full.
// ---------------------------------------------------------------------

struct RelinNode {
    std::size_t level = 0;      // primes remaining
    std::size_t digit_off = 0;  // first digit index in the poly list
    const RelinKey::LevelKeys *keys = nullptr;
};

/** Digit j lift: d_j = [c2 * (Q_L/q_j)^{-1}]_{q_j} into every RNS row. */
struct DigitTask {
    const RnsPoly *c2;
    RnsPoly *digit;
    std::size_t j;
    std::size_t level;
};

/** One single-row transform (forward or inverse) in a batched NTT
 *  dispatch. */
struct RowTask {
    const NttEngine *engine;
    u64 *row;
    std::size_t n;
};

/** Gadget inner-product accumulation for one (accumulator, limb) row. */
struct AccTask {
    RnsPoly *acc;
    const std::vector<RnsPoly> *keys;
    std::size_t digit_off;
    std::size_t level;
    std::size_t limb;
};

struct RelinCore {
    std::vector<RelinNode> *nodes;
    /** Scratch polynomials: digits first, then the 2-per-ciphertext
     *  gadget accumulators starting at @ref acc_off. */
    std::vector<RnsPoly *> *polys;
    std::size_t acc_off = 0;
};

/** @pre the caller holds a ScratchArena::OpScope on ctx.scratch() for
 *  the whole op (the arena owns every buffer this fills). */
RelinCore
RelinGadgetAccumulate(const HeContext &ctx, const RelinKey &rk,
                      std::span<const Ciphertext *const> in,
                      std::size_t min_primes)
{
    ScratchArena &arena = ctx.scratch();
    auto &nodes = arena.Buffer<RelinNode>();
    nodes.clear();
    std::size_t total_digits = 0;
    for (const Ciphertext *ct : in) {
        if (ct->parts.size() != 3) {
            throw std::invalid_argument("relinearization expects degree 2");
        }
        for (const RnsPoly &part : ct->parts) {
            if (part.domain() != RnsPoly::Domain::kCoefficient) {
                throw std::invalid_argument(
                    "relinearization expects coefficient domain");
            }
        }
        RelinNode node;
        node.level = ct->parts[0].prime_count();
        if (node.level < min_primes) {
            throw std::invalid_argument(
                "fused relin-modswitch needs at least two primes");
        }
        node.keys = &rk.at_level(node.level);
        if (node.keys->b.size() != node.level) {
            throw std::invalid_argument("relin key level mismatch");
        }
        node.digit_off = total_digits;
        total_digits += node.level;
        nodes.push_back(node);
    }

    auto &polys = arena.Buffer<RnsPoly *>();
    polys.clear();
    for (const RelinNode &node : nodes) {
        const auto level = ctx.level_context(node.level);
        for (std::size_t j = 0; j < node.level; ++j) {
            polys.push_back(&arena.NextPoly(level, /*zero=*/false));
        }
    }

    // Stage 1: CRT digit decomposition, one dispatch per batch over
    // (ciphertext, digit) tasks; each task writes its digit's `level`
    // rows through the level's Barrett reducers.
    auto &digit_tasks = arena.Buffer<DigitTask>();
    digit_tasks.clear();
    std::size_t max_work = 1;
    u64 digit_rows = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        for (std::size_t j = 0; j < nodes[i].level; ++j) {
            digit_tasks.push_back({&in[i]->parts[2],
                                   polys[nodes[i].digit_off + j], j,
                                   nodes[i].level});
            max_work = std::max(max_work,
                                in[i]->parts[2].degree() * nodes[i].level);
            digit_rows += nodes[i].level;
        }
    }
    AddElementwisePasses(digit_rows);
    ParallelFor(digit_tasks.size(), max_work, [&](std::size_t t) {
        const DigitTask &task = digit_tasks[t];
        const RnsNttContext &level = task.digit->context();
        const u64 qj = level.basis().prime(task.j);
        const u64 q_tilde =
            InvMod(ctx.q_hat_level(task.level, task.j, task.j), qj);
        const u64 q_tilde_bar = ShoupPrecompute(q_tilde, qj);
        const std::span<const u64> src = task.c2->row(task.j);
        for (std::size_t k = 0; k < task.c2->degree(); ++k) {
            const u64 v = MulModShoup(src[k], q_tilde, q_tilde_bar, qj);
            for (std::size_t l = 0; l < task.level; ++l) {
                task.digit->row(l)[k] = level.reducer(l).Reduce(v);
            }
        }
    });

    // Stage 2: ONE lazy forward-NTT dispatch over every digit x limb —
    // the only forward transforms in the whole op (np^2 row transforms
    // per ciphertext; the coefficient-domain-key formulation paid
    // 4*np^2 by re-transforming keys and digits per product).
    auto &rows = arena.Buffer<RowTask>();
    rows.clear();
    std::size_t max_degree = 1;
    for (std::size_t d = 0; d < total_digits; ++d) {
        RnsPoly *digit = polys[d];
        for (std::size_t l = 0; l < digit->prime_count(); ++l) {
            rows.push_back({&digit->context().engine(l),
                            digit->row(l).data(), digit->degree()});
        }
        max_degree = std::max(max_degree, digit->degree());
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t t) {
        rows[t].engine->ForwardLazy({rows[t].row, rows[t].n});
    });
    for (std::size_t d = 0; d < total_digits; ++d) {
        detail::RnsPolyBatchAccess::MarkEvaluation(*polys[d],
                                                   /*lazy=*/true);
    }

    // Stage 3: evaluation-domain gadget accumulation, one dispatch over
    // (ciphertext, accumulator part, limb) tasks; each task folds all
    // np digit x key products for its row with one Barrett reduction
    // per element.
    const std::size_t acc_off = polys.size();
    for (const RelinNode &node : nodes) {
        const auto level = ctx.level_context(node.level);
        polys.push_back(&arena.NextPoly(level, /*zero=*/true));
        polys.push_back(&arena.NextPoly(level, /*zero=*/true));
    }
    auto &acc_tasks = arena.Buffer<AccTask>();
    acc_tasks.clear();
    u64 acc_rows = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        for (std::size_t part = 0; part < 2; ++part) {
            const std::vector<RnsPoly> &keys =
                part == 0 ? nodes[i].keys->b : nodes[i].keys->a;
            RnsPoly *acc = polys[acc_off + 2 * i + part];
            for (std::size_t l = 0; l < nodes[i].level; ++l) {
                acc_tasks.push_back(
                    {acc, &keys, nodes[i].digit_off, nodes[i].level, l});
                acc_rows += nodes[i].level;
            }
        }
    }
    AddElementwisePasses(acc_rows);
    ParallelFor(acc_tasks.size(), max_work, [&](std::size_t t) {
        const AccTask &task = acc_tasks[t];
        const BarrettReducer &red =
            task.acc->context().reducer(task.limb);
        const std::span<u64> dst = task.acc->row(task.limb);
        for (std::size_t j = 0; j < task.level; ++j) {
            const std::span<const u64> dj =
                polys[task.digit_off + j]->row(task.limb);
            const std::span<const u64> kj =
                (*task.keys)[j].row(task.limb);
            for (std::size_t k = 0; k < dst.size(); ++k) {
                dst[k] = red.MulAddMod(dj[k], kj[k], dst[k]);
            }
        }
    });
    for (std::size_t a = acc_off; a < polys.size(); ++a) {
        detail::RnsPolyBatchAccess::MarkEvaluation(*polys[a]);
    }

    return {&nodes, &polys, acc_off};
}

}  // namespace

void
BatchAdd(const HeContext &ctx, std::span<const Ciphertext *const> a,
         std::span<const Ciphertext *const> b,
         std::span<Ciphertext *const> out, bool subtract)
{
    (void)ctx;
    CheckSpanLengths(a.size(), b.size(), out.size());

    // Element-wise task per (ciphertext, part, limb); the whole batch
    // is one pool dispatch. Outputs are copies of `a` combined in place
    // (out[i] may alias a[i], not b[i]). Lazy [0, 4p) parts (from
    // ToEvaluationLazy) reduce/fold exactly as RnsPoly::operator+=.
    std::vector<AddTask> tasks;
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < a.size(); ++i) {
        CheckPairCompatible(*a[i], *b[i]);
        if (out[i] != a[i]) {
            *out[i] = *a[i];
        }
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Ciphertext &cb = *b[i];
        for (std::size_t j = 0; j < cb.parts.size(); ++j) {
            AppendAddTasks(tasks, out[i]->parts[j], cb.parts[j], max_n);
        }
    }
    RunAddTasks(tasks, max_n, subtract);
}

void
BatchMul(const HeContext &ctx, std::span<const Ciphertext *const> a,
         std::span<const Ciphertext *const> b,
         std::span<Ciphertext *const> out)
{
    CheckSpanLengths(a.size(), b.size(), out.size());
    const std::size_t m = a.size();

    // Stage 0: working copies of every *distinct* input part, interned
    // by address — a ciphertext feeding several products in the batch
    // (squaring included) is copied and transformed exactly once.
    struct Node {
        std::size_t a0, a1, b0, b1;  // indices into `fwd`
    };
    std::vector<RnsPoly> fwd;
    fwd.reserve(4 * m);
    std::unordered_map<const RnsPoly *, std::size_t> slots;
    const auto intern = [&](const RnsPoly &part) {
        const auto [it, inserted] = slots.try_emplace(&part, fwd.size());
        if (inserted) {
            fwd.push_back(part);
        }
        return it->second;
    };
    std::vector<Node> nodes(m);
    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ca = *a[i];
        const Ciphertext &cb = *b[i];
        if (ca.parts.size() != 2 || cb.parts.size() != 2) {
            throw std::invalid_argument(
                "Mul expects degree-1 ciphertexts; relinearize first");
        }
        CheckPairCompatible(ca, cb);
        nodes[i].a0 = intern(ca.parts[0]);
        nodes[i].a1 = intern(ca.parts[1]);
        nodes[i].b0 = intern(cb.parts[0]);
        nodes[i].b1 = intern(cb.parts[1]);
    }

    // Stage 1: ONE lazy forward-NTT dispatch across every input part x
    // limb. Rows stay in [0, 4p) — the tensor stage's Barrett products
    // tolerate them (16p^2 fits u128; the fused cross term needs
    // 32p^2 < 2^128, guaranteed by HeParams' prime_bits <= 61 bound).
    std::vector<RnsPoly *> pending;
    pending.reserve(fwd.size());
    for (RnsPoly &poly : fwd) {
        if (poly.domain() == RnsPoly::Domain::kCoefficient) {
            pending.push_back(&poly);
        }
    }
    RnsPoly::BatchToEvaluation(pending, /*lazy=*/true);

    // Stage 2: ONE tensor dispatch per (ciphertext, limb); each task
    // fills the three result rows (c0 = a0 b0, c1 = a0 b1 + a1 b0,
    // c2 = a1 b1) with one Barrett reduction per output element.
    std::vector<Ciphertext> results(m);
    for (std::size_t i = 0; i < m; ++i) {
        const auto level =
            ctx.level_context(a[i]->parts[0].prime_count());
        results[i].parts.assign(3, RnsPoly(level));
    }
    struct TensorTask {
        const u64 *a0, *a1, *b0, *b1;
        u64 *c0, *c1, *c2;
        const BarrettReducer *red;
        std::size_t n;
    };
    std::vector<TensorTask> tensor;
    std::size_t max_n = 1;
    for (std::size_t i = 0; i < m; ++i) {
        const Node &nd = nodes[i];
        const RnsNttContext &level = fwd[nd.a0].context();
        for (std::size_t l = 0; l < fwd[nd.a0].prime_count(); ++l) {
            tensor.push_back({fwd[nd.a0].row(l).data(),
                              fwd[nd.a1].row(l).data(),
                              fwd[nd.b0].row(l).data(),
                              fwd[nd.b1].row(l).data(),
                              results[i].parts[0].row(l).data(),
                              results[i].parts[1].row(l).data(),
                              results[i].parts[2].row(l).data(),
                              &level.reducer(l), fwd[nd.a0].degree()});
            max_n = std::max(max_n, fwd[nd.a0].degree());
        }
    }
    AddElementwisePasses(3 * tensor.size());  // three result rows each
    ParallelFor(tensor.size(), max_n, [&](std::size_t t) {
        const TensorTask &task = tensor[t];
        for (std::size_t k = 0; k < task.n; ++k) {
            task.c0[k] = task.red->MulMod(task.a0[k], task.b0[k]);
            task.c1[k] =
                task.red->Reduce(Mul64Wide(task.a0[k], task.b1[k]) +
                                 Mul64Wide(task.a1[k], task.b0[k]));
            task.c2[k] = task.red->MulMod(task.a1[k], task.b1[k]);
        }
    });
    for (Ciphertext &result : results) {
        for (RnsPoly &part : result.parts) {
            detail::RnsPolyBatchAccess::MarkEvaluation(part);
        }
    }

    // Stage 3: ONE inverse-NTT dispatch across all 3m result parts.
    std::vector<RnsPoly *> inv;
    inv.reserve(3 * m);
    for (Ciphertext &result : results) {
        for (RnsPoly &part : result.parts) {
            inv.push_back(&part);
        }
    }
    RnsPoly::BatchToCoefficient(inv);

    for (std::size_t i = 0; i < m; ++i) {
        *out[i] = std::move(results[i]);
    }
}

void
BatchRelinearize(const HeContext &ctx, const RelinKey &rk,
                 std::span<const Ciphertext *const> in,
                 std::span<Ciphertext *const> out)
{
    CheckSpanLengths(in.size(), in.size(), out.size());
    const std::size_t m = in.size();
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);
    const RelinCore core =
        RelinGadgetAccumulate(ctx, rk, in, /*min_primes=*/1);
    auto &nodes = *core.nodes;
    auto &polys = *core.polys;

    // Stage 4: ONE inverse-NTT dispatch over the 2m accumulators.
    auto &rows = arena.Buffer<RowTask>();
    rows.clear();
    std::size_t max_degree = 1;
    for (std::size_t a = core.acc_off; a < polys.size(); ++a) {
        RnsPoly *acc = polys[a];
        for (std::size_t l = 0; l < acc->prime_count(); ++l) {
            rows.push_back({&acc->context().engine(l),
                            acc->row(l).data(), acc->degree()});
        }
        max_degree = std::max(max_degree, acc->degree());
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t t) {
        rows[t].engine->Inverse({rows[t].row, rows[t].n});
    });
    for (std::size_t a = core.acc_off; a < polys.size(); ++a) {
        detail::RnsPolyBatchAccess::MarkCoefficient(*polys[a]);
    }

    // Stage 5: fold the input's (c0, c1) into the output, one dispatch
    // writing straight into out[i] (out[i] may alias in[i]).
    struct FoldTask {
        u64 *dst;
        const u64 *acc;
        const u64 *src;
        u64 p;
        std::size_t n;
    };
    auto &folds = arena.Buffer<FoldTask>();
    folds.clear();
    for (std::size_t i = 0; i < m; ++i) {
        EnsureParts(*out[i], 2, ctx.level_context(nodes[i].level));
        for (std::size_t part = 0; part < 2; ++part) {
            RnsPoly &dst = out[i]->parts[part];
            const RnsPoly &acc = *polys[core.acc_off + 2 * i + part];
            const RnsPoly &src = in[i]->parts[part];
            const RnsBasis &basis = acc.context().basis();
            for (std::size_t l = 0; l < nodes[i].level; ++l) {
                folds.push_back({dst.row(l).data(), acc.row(l).data(),
                                 src.row(l).data(), basis.prime(l),
                                 dst.degree()});
            }
        }
    }
    AddElementwisePasses(folds.size());
    ParallelFor(folds.size(), max_degree, [&](std::size_t t) {
        const FoldTask &task = folds[t];
        for (std::size_t k = 0; k < task.n; ++k) {
            task.dst[k] = AddMod(task.acc[k], task.src[k], task.p);
        }
    });
}

void
BatchRelinModSwitch(const HeContext &ctx, const RelinKey &rk,
                    std::span<const Ciphertext *const> in,
                    std::span<Ciphertext *const> out)
{
    CheckSpanLengths(in.size(), in.size(), out.size());
    const std::size_t m = in.size();
    const u64 t_mod = ctx.params().plain_modulus;
    ScratchArena &arena = ctx.scratch();
    const ScratchArena::OpScope scope(arena);
    const RelinCore core =
        RelinGadgetAccumulate(ctx, rk, in, /*min_primes=*/2);
    auto &nodes = *core.nodes;
    auto &polys = *core.polys;

    // Fused inverse stage: ONE dispatch over the 2m accumulators x
    // limbs where each task inverse-transforms its row and then, while
    // the row is still cache-hot, folds in the input part and applies
    // the modulus-switch alpha rescale (alpha = q_k mod t) as an
    // epilogue of the same loop. The unfused chain pays two standalone
    // sweeps (the (c0, c1) fold and the alpha pass) for exactly these
    // values — here they never leave the inverse dispatch, which is why
    // NttOpCounts::elementwise does not grow.
    struct FusedInvTask {
        const NttEngine *engine;
        u64 *row;        // accumulator row, in place
        const u64 *src;  // matching input-part row
        u64 p;
        u64 s, s_bar;    // alpha mod p, Shoup companion
        std::size_t n;
    };
    auto &fused = arena.Buffer<FusedInvTask>();
    fused.clear();
    std::size_t max_degree = 1;
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t level = nodes[i].level;
        const RnsBasis &basis = in[i]->parts[0].context().basis();
        const u64 qk = basis.prime(level - 1);
        const u64 alpha = qk % t_mod;
        for (std::size_t part = 0; part < 2; ++part) {
            RnsPoly &acc = *polys[core.acc_off + 2 * i + part];
            const RnsPoly &src = in[i]->parts[part];
            for (std::size_t l = 0; l < level; ++l) {
                const u64 p = basis.prime(l);
                const u64 s = alpha % p;
                fused.push_back({&acc.context().engine(l),
                                 acc.row(l).data(), src.row(l).data(), p,
                                 s, ShoupPrecompute(s, p), acc.degree()});
            }
            max_degree = std::max(max_degree, acc.degree());
        }
    }
    ParallelFor(fused.size(), max_degree, [&](std::size_t t) {
        const FusedInvTask &task = fused[t];
        task.engine->Inverse({task.row, task.n});
        for (std::size_t k = 0; k < task.n; ++k) {
            const u64 folded = AddMod(task.row[k], task.src[k], task.p);
            task.row[k] =
                MulModShoup(folded, task.s, task.s_bar, task.p);
        }
    });
    for (std::size_t a = core.acc_off; a < polys.size(); ++a) {
        detail::RnsPolyBatchAccess::MarkCoefficient(*polys[a]);
    }

    // Divide-and-round into out at the next level — the only standalone
    // element-wise sweep left in the fused op. delta = t * [c_k *
    // t^{-1}]_{q_k}, centered, satisfies delta == c (mod q_k) and
    // delta == 0 (mod t), so (c - delta) / q_k is exact and
    // plaintext-clean. The InvMod/Shoup constants are hoisted into the
    // task list (InvMod is a PowMod of native divisions — the exact
    // path the hot loops exist to avoid); the dropped top row is read
    // from the accumulator and never written anywhere.
    struct MsSwitchTask {
        const u64 *src;  // accumulator row for the target limb
        const u64 *top;  // accumulator row for the dropped prime
        u64 *dst;        // output row at the next level
        const BarrettReducer *red_qi;
        u64 qk, t_inv_qk, t_inv_qk_bar;
        u64 qi, qk_inv, qk_inv_bar, t_mod_qi, t_mod_qi_bar;
        std::size_t n;
    };
    auto &switches = arena.Buffer<MsSwitchTask>();
    switches.clear();
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t level = nodes[i].level;
        const auto next = ctx.level_context(level - 1);
        EnsureParts(*out[i], 2, next);
        const RnsPoly &acc0 = *polys[core.acc_off + 2 * i];
        const RnsBasis &basis = acc0.context().basis();
        const u64 qk = basis.prime(level - 1);
        const u64 t_inv_qk = InvMod(t_mod % qk, qk);
        const u64 t_inv_qk_bar = ShoupPrecompute(t_inv_qk, qk);
        for (std::size_t l = 0; l + 1 < level; ++l) {
            const u64 qi = basis.prime(l);
            const u64 qk_inv = InvMod(qk % qi, qi);
            const u64 t_mod_qi = t_mod % qi;
            MsSwitchTask task;
            task.red_qi = &next->reducer(l);
            task.qk = qk;
            task.t_inv_qk = t_inv_qk;
            task.t_inv_qk_bar = t_inv_qk_bar;
            task.qi = qi;
            task.qk_inv = qk_inv;
            task.qk_inv_bar = ShoupPrecompute(qk_inv, qi);
            task.t_mod_qi = t_mod_qi;
            task.t_mod_qi_bar = ShoupPrecompute(t_mod_qi, qi);
            for (std::size_t part = 0; part < 2; ++part) {
                const RnsPoly &acc =
                    *polys[core.acc_off + 2 * i + part];
                task.src = acc.row(l).data();
                task.top = acc.row(level - 1).data();
                task.dst = out[i]->parts[part].row(l).data();
                task.n = acc.degree();
                switches.push_back(task);
            }
        }
    }
    AddElementwisePasses(switches.size());
    ParallelFor(switches.size(), max_degree, [&](std::size_t t) {
        const MsSwitchTask &task = switches[t];
        for (std::size_t k = 0; k < task.n; ++k) {
            const u64 u = MulModShoup(task.top[k], task.t_inv_qk,
                                      task.t_inv_qk_bar, task.qk);
            u64 delta_mod_qi;
            if (u <= task.qk / 2) {
                delta_mod_qi =
                    MulModShoup(task.red_qi->Reduce(u), task.t_mod_qi,
                                task.t_mod_qi_bar, task.qi);
            } else {
                const u64 v = task.qk - u;  // delta = -t * v
                const u64 pos =
                    MulModShoup(task.red_qi->Reduce(v), task.t_mod_qi,
                                task.t_mod_qi_bar, task.qi);
                delta_mod_qi = pos == 0 ? 0 : task.qi - pos;
            }
            const u64 diff =
                SubMod(task.src[k], delta_mod_qi, task.qi);
            task.dst[k] = MulModShoup(diff, task.qk_inv,
                                      task.qk_inv_bar, task.qi);
        }
    });
}

void
BatchModSwitch(const HeContext &ctx, std::span<const Ciphertext *const> in,
               std::span<Ciphertext *const> out)
{
    CheckSpanLengths(in.size(), in.size(), out.size());
    const std::size_t m = in.size();
    const u64 t_mod = ctx.params().plain_modulus;

    std::size_t total_parts = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const Ciphertext &ct = *in[i];
        if (ct.parts.at(0).prime_count() < 2) {
            throw std::invalid_argument(
                "cannot modulus-switch below one prime");
        }
        for (const RnsPoly &part : ct.parts) {
            if (part.domain() != RnsPoly::Domain::kCoefficient) {
                throw std::invalid_argument(
                    "modulus switch expects coefficient domain");
            }
        }
        total_parts += ct.parts.size();
    }

    // Stage 1: alpha pre-scaling (alpha = q_k mod t makes the switch
    // plaintext-preserving) into working copies, one dispatch over all
    // parts x limbs.
    std::vector<RnsPoly> scaled;
    scaled.reserve(total_parts);
    for (std::size_t i = 0; i < m; ++i) {
        for (const RnsPoly &part : in[i]->parts) {
            scaled.push_back(part);
        }
    }
    struct ScaleTask {
        u64 *row;
        u64 p;
        u64 alpha;
        std::size_t n;
    };
    std::vector<ScaleTask> scale_tasks;
    std::size_t max_n = 1;
    {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t np_cur = in[i]->parts[0].prime_count();
            const u64 qk =
                in[i]->parts[0].context().basis().prime(np_cur - 1);
            const u64 alpha = qk % t_mod;
            for (std::size_t j = 0; j < in[i]->parts.size(); ++j) {
                RnsPoly &part = scaled[idx++];
                const RnsBasis &basis = part.context().basis();
                for (std::size_t l = 0; l < part.prime_count(); ++l) {
                    scale_tasks.push_back({part.row(l).data(),
                                           basis.prime(l), alpha,
                                           part.degree()});
                    max_n = std::max(max_n, part.degree());
                }
            }
        }
    }
    AddElementwisePasses(scale_tasks.size());
    ParallelFor(scale_tasks.size(), max_n, [&](std::size_t t) {
        const ScaleTask &task = scale_tasks[t];
        const u64 s = task.alpha % task.p;
        const u64 s_bar = ShoupPrecompute(s, task.p);
        for (std::size_t k = 0; k < task.n; ++k) {
            task.row[k] = MulModShoup(task.row[k], s, s_bar, task.p);
        }
    });

    // Stage 2: divide-and-round, one dispatch over all parts x target
    // limbs. delta = t * [c_k * t^{-1}]_{q_k}, centered, satisfies
    // delta == c (mod q_k) and delta == 0 (mod t), so (c - delta) / q_k
    // is exact and plaintext-clean. The InvMod/Shoup constants depend
    // only on the ciphertext's level, so they are hoisted out of the
    // parallel tasks (InvMod is a PowMod of native divisions — the
    // exact path the hot loops exist to avoid).
    struct LevelConsts {
        u64 qk = 0;
        u64 t_inv_qk = 0, t_inv_qk_bar = 0;
        std::vector<u64> qk_inv, qk_inv_bar;        // per target limb
        std::vector<u64> t_mod_qi, t_mod_qi_bar;    // per target limb
    };
    std::vector<LevelConsts> consts(m);
    for (std::size_t i = 0; i < m; ++i) {
        const RnsBasis &basis = in[i]->parts[0].context().basis();
        const std::size_t np_cur = in[i]->parts[0].prime_count();
        LevelConsts &c = consts[i];
        c.qk = basis.prime(np_cur - 1);
        c.t_inv_qk = InvMod(t_mod % c.qk, c.qk);
        c.t_inv_qk_bar = ShoupPrecompute(c.t_inv_qk, c.qk);
        for (std::size_t l = 0; l + 1 < np_cur; ++l) {
            const u64 qi = basis.prime(l);
            c.qk_inv.push_back(InvMod(c.qk % qi, qi));
            c.qk_inv_bar.push_back(ShoupPrecompute(c.qk_inv[l], qi));
            c.t_mod_qi.push_back(t_mod % qi);
            c.t_mod_qi_bar.push_back(ShoupPrecompute(c.t_mod_qi[l], qi));
        }
    }

    std::vector<Ciphertext> results(m);
    struct SwitchTask {
        const RnsPoly *src;      // alpha-scaled part at the old level
        RnsPoly *dst;            // part at the new level
        const LevelConsts *consts;
        std::size_t i;           // target limb
    };
    std::vector<SwitchTask> switch_tasks;
    {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t np_cur = in[i]->parts[0].prime_count();
            const auto next = ctx.level_context(np_cur - 1);
            results[i].parts.assign(in[i]->parts.size(), RnsPoly(next));
            for (std::size_t j = 0; j < in[i]->parts.size(); ++j) {
                const RnsPoly &src = scaled[idx++];
                for (std::size_t l = 0; l + 1 < np_cur; ++l) {
                    switch_tasks.push_back(
                        {&src, &results[i].parts[j], &consts[i], l});
                }
            }
        }
    }
    AddElementwisePasses(switch_tasks.size());
    ParallelFor(switch_tasks.size(), max_n, [&](std::size_t t) {
        const SwitchTask &task = switch_tasks[t];
        const RnsBasis &basis = task.src->context().basis();
        const std::size_t k_top = task.src->prime_count() - 1;
        const LevelConsts &c = *task.consts;
        const u64 qk = c.qk;
        const u64 t_inv_qk = c.t_inv_qk;
        const u64 t_inv_qk_bar = c.t_inv_qk_bar;
        const u64 qi = basis.prime(task.i);
        const BarrettReducer &red_qi = task.dst->context().reducer(task.i);
        const u64 qk_inv = c.qk_inv[task.i];
        const u64 qk_inv_bar = c.qk_inv_bar[task.i];
        const u64 t_mod_qi = c.t_mod_qi[task.i];
        const u64 t_mod_qi_bar = c.t_mod_qi_bar[task.i];
        const std::span<const u64> top = task.src->row(k_top);
        const std::span<const u64> src = task.src->row(task.i);
        const std::span<u64> dst = task.dst->row(task.i);
        for (std::size_t idx = 0; idx < dst.size(); ++idx) {
            const u64 u =
                MulModShoup(top[idx], t_inv_qk, t_inv_qk_bar, qk);
            u64 delta_mod_qi;
            if (u <= qk / 2) {
                delta_mod_qi = MulModShoup(red_qi.Reduce(u), t_mod_qi,
                                           t_mod_qi_bar, qi);
            } else {
                const u64 v = qk - u;  // delta = -t * v
                const u64 pos = MulModShoup(red_qi.Reduce(v), t_mod_qi,
                                            t_mod_qi_bar, qi);
                delta_mod_qi = pos == 0 ? 0 : qi - pos;
            }
            const u64 diff = SubMod(src[idx], delta_mod_qi, qi);
            dst[idx] = MulModShoup(diff, qk_inv, qk_inv_bar, qi);
        }
    });

    for (std::size_t i = 0; i < m; ++i) {
        *out[i] = std::move(results[i]);
    }
}

}  // namespace hentt::he
