#include "he/he_graph.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "he/ciphertext_batch.h"

namespace hentt::he {

bool
CtFuture::ready() const
{
    if (graph_ == nullptr) {
        return false;
    }
    MutexLock lock(graph_->mutex_);
    return graph_->nodes_[node_].done;
}

const Ciphertext &
CtFuture::get() const
{
    if (!valid()) {
        ThrowStatus(Status(ErrorCode::kFailedPrecondition,
                           "get() on an empty CtFuture: the handle is "
                           "default-constructed and bound to no graph "
                           "node")
                        .WithFrame("CtFuture::get"));
    }
    MutexLock lock(graph_->mutex_);
    if (!graph_->nodes_[node_].done) {
        // Demanding a node pins it into the schedule: a previous
        // bypass is undone, and the fusion pass of the Execute() this
        // very call triggers will not bypass it either — without the
        // pin, get() on a Relinearize whose only consumer is a pending
        // ModSwitch would return an empty value.
        graph_->nodes_[node_].demanded = true;
        graph_->nodes_[node_].fused_away = false;
        graph_->ExecuteLocked();
    }
    const HeOpGraph::Node &node = graph_->nodes_[node_];
    if (!node.status.ok()) {
        ThrowStatus(node.status.WithFrame(
            "CtFuture::get(node " + std::to_string(node_) + ", " +
            HeOpGraph::KindName(node.kind) + ")"));
    }
    // Safe to hand out without the lock: settled nodes are immutable
    // and deque storage never relocates them.
    return node.value;
}

Result<const Ciphertext *>
CtFuture::TryGet() const
{
    try {
        return &get();
    } catch (...) {
        return CurrentExceptionToStatus();
    }
}

Status
CtFuture::status() const
{
    if (!valid()) {
        return Status(ErrorCode::kUnavailable,
                      "empty CtFuture: bound to no graph node");
    }
    MutexLock lock(graph_->mutex_);
    const HeOpGraph::Node &node = graph_->nodes_[node_];
    if (!node.done) {
        return Status(ErrorCode::kUnavailable,
                      "node " + std::to_string(node_) + " (" +
                          HeOpGraph::KindName(node.kind) +
                          ") not yet executed");
    }
    return node.status;
}

HeOpGraph::HeOpGraph(const BgvScheme &scheme, const RelinKey *rk)
    : scheme_(scheme), rk_(rk)
{
}

const char *
HeOpGraph::KindName(Kind kind)
{
    switch (kind) {
      case Kind::kInput:
        return "Input";
      case Kind::kAdd:
        return "Add";
      case Kind::kSub:
        return "Sub";
      case Kind::kMul:
        return "Mul";
      case Kind::kRelin:
        return "Relinearize";
      case Kind::kModSwitch:
        return "ModSwitch";
      case Kind::kRelinModSwitch:
        return "RelinModSwitch";
    }
    return "Unknown";
}

void
HeOpGraph::SettleFailed(std::size_t i, Status status)
{
    Node &node = nodes_[i];
    node.status = status.WithFrame("HeOpGraph node " + std::to_string(i) +
                                   " (" + KindName(node.kind) + ")");
    node.done = true;
}

std::size_t
HeOpGraph::CheckOwned(const CtFuture &f) const
{
    if (!f.valid() || f.graph_ != this) {
        ThrowStatus(Status(ErrorCode::kInvalidArgument,
                           "CtFuture does not belong to this graph")
                        .WithFrame("HeOpGraph::CheckOwned"));
    }
    return f.node_;
}

CtFuture
HeOpGraph::Enqueue(Kind kind, std::size_t a, std::size_t b,
                   const RelinKey *rk)
{
    Node node;
    node.kind = kind;
    node.a = a;
    node.b = b;
    node.rk = rk;
    MutexLock lock(mutex_);
    nodes_.push_back(std::move(node));
    return CtFuture(this, nodes_.size() - 1);
}

CtFuture
HeOpGraph::Input(Ciphertext ct)
{
    Node node;
    node.kind = Kind::kInput;
    node.done = true;
    node.value = std::move(ct);
    MutexLock lock(mutex_);
    nodes_.push_back(std::move(node));
    return CtFuture(this, nodes_.size() - 1);
}

CtFuture
HeOpGraph::Add(CtFuture a, CtFuture b)
{
    return Enqueue(Kind::kAdd, CheckOwned(a), CheckOwned(b));
}

CtFuture
HeOpGraph::Sub(CtFuture a, CtFuture b)
{
    return Enqueue(Kind::kSub, CheckOwned(a), CheckOwned(b));
}

CtFuture
HeOpGraph::Mul(CtFuture a, CtFuture b)
{
    return Enqueue(Kind::kMul, CheckOwned(a), CheckOwned(b));
}

CtFuture
HeOpGraph::Relinearize(CtFuture a, const RelinKey *rk)
{
    const std::size_t n = CheckOwned(a);
    return Enqueue(Kind::kRelin, n, n, rk);
}

CtFuture
HeOpGraph::MulRelin(CtFuture a, CtFuture b, const RelinKey *rk)
{
    return Relinearize(Mul(a, b), rk);
}

CtFuture
HeOpGraph::ModSwitch(CtFuture a)
{
    const std::size_t n = CheckOwned(a);
    return Enqueue(Kind::kModSwitch, n, n);
}

CtFuture
HeOpGraph::RelinModSwitch(CtFuture a, const RelinKey *rk)
{
    const std::size_t n = CheckOwned(a);
    return Enqueue(Kind::kRelinModSwitch, n, n, rk);
}

CtFuture
HeOpGraph::MulRelinModSwitch(CtFuture a, CtFuture b, const RelinKey *rk)
{
    return RelinModSwitch(Mul(a, b), rk);
}

std::size_t
HeOpGraph::pending() const
{
    MutexLock lock(mutex_);
    std::size_t count = 0;
    for (const Node &node : nodes_) {
        if (!node.done && !node.fused_away) {
            ++count;
        }
    }
    return count;
}

void
HeOpGraph::Execute()
{
    MutexLock lock(mutex_);
    ExecuteLocked();
}

void
HeOpGraph::ExecuteLocked()
{
    // Auto-fusion pass: a pending Relinearize whose ONLY consumer is a
    // pending ModSwitch collapses into that consumer as one fused
    // kRelinModSwitch node — the scheduler applies the same fusion an
    // explicit RelinModSwitch() call opts into. Consumers are counted
    // across every not-yet-done node (single-operand kinds store their
    // operand twice; count it once), so a Relinearize feeding anything
    // else keeps its standalone node. Graphs without relin keys never
    // fuse (and can never hold bypassed nodes), so the whole pass is
    // skipped there; a pending node carrying its own key (cross-client
    // graphs) re-enables it.
    bool any_keyed = rk_ != nullptr;
    for (const Node &node : nodes_) {
        if (!node.done && node.rk != nullptr) {
            any_keyed = true;
        }
    }
    if (any_keyed) {
        std::vector<std::size_t> uses(nodes_.size(), 0);
        for (const Node &node : nodes_) {
            if (node.done) {
                continue;
            }
            ++uses[node.a];
            if (node.b != node.a) {
                ++uses[node.b];
            }
        }
        // A node bypassed by an earlier Execute() that has since
        // gained a pending consumer (ops can keep appending) rejoins
        // the schedule — the pass below may legitimately re-bypass it
        // when the new consumer is again a lone ModSwitch; any other
        // consumer shape materialises it.
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (nodes_[i].fused_away && uses[i] > 0) {
                nodes_[i].fused_away = false;
            }
        }
        for (Node &node : nodes_) {
            if (node.done || node.kind != Kind::kModSwitch) {
                continue;
            }
            Node &relin = nodes_[node.a];
            if (relin.done || relin.fused_away || relin.demanded ||
                relin.kind != Kind::kRelin || uses[node.a] != 1 ||
                (relin.rk == nullptr && rk_ == nullptr)) {
                continue;
            }
            node.kind = Kind::kRelinModSwitch;
            node.a = relin.a;
            node.b = relin.a;
            node.rk = relin.rk;  // the fused stage key-switches with
                                 // the bypassed node's key
            relin.fused_away = true;
        }
    }

    // Wavefront labelling: operands always precede their consumers in
    // nodes_ (append-only), so one ascending pass assigns each pending
    // node 1 + the max depth of its pending operands (computed nodes
    // count as depth 0).
    std::vector<std::size_t> depth(nodes_.size(), 0);
    std::size_t max_depth = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].done || nodes_[i].fused_away) {
            continue;
        }
        depth[i] = 1 + std::max(depth[nodes_[i].a], depth[nodes_[i].b]);
        max_depth = std::max(max_depth, depth[i]);
    }

    // Within a wavefront, all nodes of one kind run as a single batched
    // kernel call — this is where independent ciphertext ops overlap.
    constexpr Kind kKinds[] = {Kind::kAdd,       Kind::kSub,
                               Kind::kMul,       Kind::kRelin,
                               Kind::kModSwitch, Kind::kRelinModSwitch};
    // One batched kernel call over a sub-span of the group's operands.
    // Keyed kinds receive the sub-batch's resolved RelinKey (the
    // kernels take one key per call).
    const HeContext &ctx = scheme_.context();
    const auto run_batch = [&](Kind kind, const RelinKey *rk,
                               std::span<const Ciphertext *const> lhs,
                               std::span<const Ciphertext *const> rhs,
                               std::span<Ciphertext *const> dst) {
        switch (kind) {
          case Kind::kAdd:
            BatchAdd(ctx, lhs, rhs, dst);
            break;
          case Kind::kSub:
            BatchAdd(ctx, lhs, rhs, dst, /*subtract=*/true);
            break;
          case Kind::kMul:
            BatchMul(ctx, lhs, rhs, dst);
            break;
          case Kind::kRelin:
            BatchRelinearize(ctx, *rk, lhs, dst);
            break;
          case Kind::kModSwitch:
            BatchModSwitch(ctx, lhs, dst);
            break;
          case Kind::kRelinModSwitch:
            BatchRelinModSwitch(ctx, *rk, lhs, dst);
            break;
          case Kind::kInput:
            break;  // unreachable: inputs are born done
        }
    };

    std::vector<std::size_t> group;
    for (std::size_t d = 1; d <= max_depth; ++d) {
        // Poison pass: a node whose operand settled with an error (its
        // kernel threw, or the poison already reached it) settles
        // immediately as kPoisoned, naming the origin. Operands of a
        // depth-d node live at depth < d, so they are settled by now —
        // the poison walks the DAG one wavefront at a time and touches
        // exactly the failed node's dependants.
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            Node &node = nodes_[i];
            if (node.done || node.fused_away || depth[i] != d) {
                continue;
            }
            const std::size_t bad =
                !nodes_[node.a].status.ok()
                    ? node.a
                    : (!nodes_[node.b].status.ok() ? node.b : i);
            if (bad != i) {
                SettleFailed(
                    i, Status(ErrorCode::kPoisoned,
                              "operand node " + std::to_string(bad) +
                                  " (" + KindName(nodes_[bad].kind) +
                                  ") failed: " +
                                  nodes_[bad].status.ToString()));
            }
        }
        for (const Kind kind : kKinds) {
            group.clear();
            for (std::size_t i = 0; i < nodes_.size(); ++i) {
                if (!nodes_[i].done && !nodes_[i].fused_away &&
                    depth[i] == d && nodes_[i].kind == kind) {
                    group.push_back(i);
                }
            }
            if (group.empty()) {
                continue;
            }
            // Keyed kinds sub-batch by resolved key (per-node override,
            // else the graph key): one kernel call per distinct key in
            // the wavefront — cross-client traffic under different keys
            // still shares a wavefront, one kernel call per client key.
            // Keyless kinds run as one sub-batch spanning everything.
            const bool keyed = kind == Kind::kRelin ||
                               kind == Kind::kRelinModSwitch;
            std::vector<const RelinKey *> batch_keys;
            for (const std::size_t i : group) {
                const RelinKey *rk =
                    keyed ? (nodes_[i].rk != nullptr ? nodes_[i].rk
                                                     : rk_)
                          : nullptr;
                if (std::find(batch_keys.begin(), batch_keys.end(),
                              rk) == batch_keys.end()) {
                    batch_keys.push_back(rk);
                }
            }
            for (const RelinKey *batch_rk : batch_keys) {
                // A graph scheduled without the keys its nodes need is
                // a configuration error, not a contained per-node
                // failure: it throws (as std::logic_error via the
                // bridge), leaving the wavefront pending.
                if (keyed && batch_rk == nullptr) {
                    ThrowStatus(Status(ErrorCode::kFailedPrecondition,
                                       "HeOpGraph has no "
                                       "relinearization keys")
                                    .WithFrame("HeOpGraph::Execute"));
                }
                std::vector<std::size_t> members;
                std::vector<const Ciphertext *> lhs, rhs;
                std::vector<Ciphertext *> dst;
                for (const std::size_t i : group) {
                    const RelinKey *rk =
                        keyed ? (nodes_[i].rk != nullptr ? nodes_[i].rk
                                                         : rk_)
                              : nullptr;
                    if (rk != batch_rk) {
                        continue;
                    }
                    members.push_back(i);
                    lhs.push_back(&nodes_[nodes_[i].a].value);
                    rhs.push_back(&nodes_[nodes_[i].b].value);
                    dst.push_back(&nodes_[i].value);
                }
                try {
                    run_batch(kind, batch_rk, lhs, rhs, dst);
                    for (const std::size_t i : members) {
                        nodes_[i].done = true;
                    }
                } catch (...) {
                    if (members.size() == 1) {
                        SettleFailed(members[0],
                                     CurrentExceptionToStatus());
                        continue;
                    }
                    // The batch failed as a whole; isolate which
                    // members genuinely fail by retrying each as a
                    // batch of one. Healthy nodes complete (their
                    // retried kernel result is bit-identical — same
                    // operands, same math), so one bad ciphertext
                    // cannot take its wavefront peers down.
                    for (std::size_t k = 0; k < members.size(); ++k) {
                        try {
                            run_batch(kind, batch_rk, {&lhs[k], 1},
                                      {&rhs[k], 1}, {&dst[k], 1});
                            nodes_[members[k]].done = true;
                        } catch (...) {
                            SettleFailed(members[k],
                                         CurrentExceptionToStatus());
                        }
                    }
                }
            }
        }
    }
}

Status
HeOpGraph::ExecuteStatus()
{
    MutexLock lock(mutex_);
    try {
        ExecuteLocked();
    } catch (...) {
        return CurrentExceptionToStatus().WithFrame(
            "HeOpGraph::ExecuteStatus");
    }
    ErrorReport report;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].done && !nodes_[i].status.ok()) {
            report.errors.push_back(nodes_[i].status);
        }
    }
    return report.Summary();
}

}  // namespace hentt::he
