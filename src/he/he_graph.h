/**
 * @file
 * HeOpGraph — an async, ciphertext-level HE pipeline on top of the
 * batched kernels (ciphertext_batch.h).
 *
 * Operations on the graph (Add/Mul/Relinearize/ModSwitch/...) do not
 * execute immediately: they enqueue whole-ciphertext nodes and return
 * CtFuture handles. Execute() then runs the DAG in dependency
 * wavefronts, and every group of independent same-kind ops in a
 * wavefront executes as a single batch — one thread-pool dispatch per
 * stage spanning all ciphertexts x parts x limbs. This is how
 * independent ciphertext ops overlap on the blocking pool: their limb
 * tasks share dispatches instead of queuing behind one another, the
 * CPU analogue of streaming independent HE ops down one big GPU batch
 * (the paper's Section V-A batching argument lifted from polynomials
 * to operations).
 *
 * Typical use:
 *
 *     HeOpGraph g(scheme, &rk);
 *     CtFuture x = g.Input(ct_a), y = g.Input(ct_b), z = g.Input(ct_c);
 *     CtFuture xy = g.MulRelin(x, y);      // independent of zz
 *     CtFuture zz = g.MulRelin(z, z);      // batched with xy
 *     CtFuture sum = g.Add(xy, zz);
 *     const Ciphertext &result = sum.get();  // runs the graph
 */

#ifndef HENTT_HE_HE_GRAPH_H
#define HENTT_HE_HE_GRAPH_H

#include <cstddef>
#include <deque>

#include "common/mutex.h"
#include "common/status.h"
#include "he/bgv.h"

namespace hentt::he {

class HeOpGraph;

/**
 * Future-style handle to a ciphertext computed by an HeOpGraph. Cheap
 * to copy; valid as long as the graph outlives it. get() forces
 * execution of all pending nodes in the owning graph.
 */
class CtFuture
{
  public:
    CtFuture() = default;

    /** Whether the handle refers to a graph node at all. */
    bool valid() const { return graph_ != nullptr; }

    /** Whether the node has already been computed (never blocks). */
    bool ready() const;

    /**
     * The computed ciphertext; triggers HeOpGraph::Execute() on the
     * owning graph when the node is still pending. If the node failed
     * (its own kernel threw, or an operand upstream failed and the
     * poison reached it), throws the node's Status — carrying the node
     * id, op kind, and the originating failure's provenance chain — via
     * ThrowStatus, so the exception is still catchable as the mapped
     * std type. get() on a default-constructed handle throws a
     * PreconditionError (a std::logic_error).
     */
    const Ciphertext &get() const;

    /**
     * Non-throwing variant: executes pending work like get(), then
     * returns either a pointer to the computed ciphertext or the node's
     * failure Status.
     */
    [[nodiscard]] Result<const Ciphertext *> TryGet() const;

    /**
     * This node's failure state without forcing execution: OK when the
     * node computed successfully, kUnavailable when the node is still
     * pending (or the handle is empty), otherwise the contained error.
     */
    [[nodiscard]] Status status() const;

  private:
    friend class HeOpGraph;
    CtFuture(HeOpGraph *graph, std::size_t node)
        : graph_(graph), node_(node)
    {
    }

    HeOpGraph *graph_ = nullptr;
    std::size_t node_ = 0;
};

/**
 * Dependency graph of whole-ciphertext HE operations, executed in
 * wavefronts through the batched kernels. Append-only: nodes are added
 * by the op methods and computed by Execute(); a graph can keep
 * growing after partial execution (already-computed nodes are never
 * re-run).
 *
 * Thread safety: every public method (and every CtFuture accessor)
 * takes the graph's internal mutex, so futures may be handed to other
 * threads and forced concurrently — the winner runs the pending
 * wavefronts, the others block and then read settled results. Node
 * values are immutable once settled and node storage is a deque, so
 * references returned by get() stay valid without the lock. The graph
 * mutex is held across batched-kernel execution and is acquired
 * *before* the context's ScratchArena mutex and the ThreadPool's run
 * mutex (see ARCHITECTURE.md's lock-ordering table).
 */
class HeOpGraph
{
  public:
    /**
     * @param scheme the scheme whose context the ciphertexts live in
     * @param rk     relinearization keys; required before the first
     *               Relinearize/MulRelin node executes, may be null
     *               for graphs without key switching
     */
    explicit HeOpGraph(const BgvScheme &scheme,
                       const RelinKey *rk = nullptr);

    /** Register an already-computed ciphertext as a graph leaf. */
    CtFuture Input(Ciphertext ct);

    /** Enqueue out = a + b (element-wise, matching degree/level). */
    CtFuture Add(CtFuture a, CtFuture b);

    /** Enqueue out = a - b (element-wise, matching degree/level). */
    CtFuture Sub(CtFuture a, CtFuture b);

    /** Enqueue the degree-2 tensor product of two degree-1 inputs. */
    CtFuture Mul(CtFuture a, CtFuture b);

    /**
     * Enqueue the key-switch of a degree-2 input back to degree 1.
     * @p rk overrides the graph-level key for this node (cross-client
     * graphs mix ciphertexts under different keys — see the serving
     * layer); nullptr uses the constructor's key. Keyed nodes in a
     * wavefront sub-batch by key: one kernel call per distinct key.
     */
    CtFuture Relinearize(CtFuture a, const RelinKey *rk = nullptr);

    /** Enqueue Mul immediately followed by Relinearize (the common
     *  chain; both stages batch with their wavefront peers). */
    CtFuture
    MulRelin(CtFuture a, CtFuture b, const RelinKey *rk = nullptr);

    /** Enqueue the drop of the input's last RNS prime (noise
     *  management between multiplications). */
    CtFuture ModSwitch(CtFuture a);

    /**
     * Enqueue the fused Relinearize→ModSwitch of a degree-2 input: key
     * switch back to degree 1 and drop the last RNS prime in one
     * pipeline stage (BatchRelinModSwitch), saving the standalone fold
     * and rescale sweeps the two-node chain pays between the
     * relinearization inverse stage and the divide-and-round. All
     * RelinModSwitch nodes in a wavefront execute as one batch (one
     * per distinct key when per-node keys are in play).
     */
    CtFuture RelinModSwitch(CtFuture a, const RelinKey *rk = nullptr);

    /** Enqueue Mul followed by the fused RelinModSwitch — the full
     *  multiply-and-descend step of a leveled circuit. */
    CtFuture MulRelinModSwitch(CtFuture a, CtFuture b,
                               const RelinKey *rk = nullptr);

    /**
     * Run every pending node. Nodes are grouped into dependency
     * wavefronts; within a wavefront, all nodes of the same kind
     * execute as one batched kernel call (single dispatches spanning
     * the whole group). Exceptions from kernels propagate and leave
     * the affected wavefront's nodes pending.
     *
     * Failure containment: a node whose batched kernel throws is
     * *settled with an error Status* instead of aborting the wavefront
     * — when several nodes shared the batch, each is retried as a
     * batch of one so only the genuinely failing nodes fail. The error
     * poisons exactly the failed node's dependents (they settle with a
     * kPoisoned Status naming the origin node); independent chains in
     * the same wavefront still complete, and their results are
     * bit-identical to a fault-free run. Failed nodes are sticky: a
     * later Execute() does not retry them. Only configuration errors
     * (a Relinearize scheduled on a graph built without keys) still
     * throw out of Execute(), as a PreconditionError.
     *
     * The scheduler auto-fuses before running: a pending Relinearize
     * node whose only consumer is a pending ModSwitch collapses into
     * one kRelinModSwitch node (the fused kernel), exactly what an
     * explicit RelinModSwitch() call would have enqueued — the
     * standalone fold/rescale sweeps between the two ops disappear.
     * The bypassed Relinearize node is *not* computed; holding a
     * CtFuture to it stays legal — get() materialises it on demand
     * with a standalone Relinearize.
     */
    void Execute() HENTT_EXCLUDES(mutex_);

    /**
     * Execute() with the error report as a value: runs every pending
     * node, then returns OK when all settled cleanly, the aggregated
     * failure Status (every failed node, with provenance) otherwise.
     * Configuration errors that Execute() throws are returned as a
     * Status too — this entry point never throws library errors.
     */
    [[nodiscard]] Status ExecuteStatus() HENTT_EXCLUDES(mutex_);

    /** Number of nodes ever added (inputs included). */
    std::size_t size() const HENTT_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return nodes_.size();
    }

    /** Number of nodes not yet computed. */
    std::size_t pending() const HENTT_EXCLUDES(mutex_);

  private:
    friend class CtFuture;

    enum class Kind {
        kInput,
        kAdd,
        kSub,
        kMul,
        kRelin,
        kModSwitch,
        kRelinModSwitch,  ///< fused Relinearize→ModSwitch stage
    };

    struct Node {
        Kind kind;
        std::size_t a = 0;  // operand node indices (kind-dependent)
        std::size_t b = 0;
        // Per-node key override for kRelin/kRelinModSwitch; nullptr
        // falls back to the graph-level rk_. Must outlive execution.
        const RelinKey *rk = nullptr;
        bool done = false;
        // Bypassed by the auto-fusion pass (a Relinearize whose only
        // consumer became a fused node): skipped by Execute and by
        // pending(), materialised lazily if a CtFuture demands it.
        bool fused_away = false;
        // A CtFuture::get() asked for this node's value: the fusion
        // pass must never bypass it (even on the Execute() that the
        // get() itself triggers).
        bool demanded = false;
        // Settled failure state. A done node with !status.ok() holds no
        // value: its kernel threw (status carries the kernel error) or
        // an operand failed upstream (kPoisoned, naming the origin).
        // Sticky — Execute() never retries a failed node.
        Status status;
        Ciphertext value;
    };

    /** Display name of a node kind ("Mul", "RelinModSwitch", ...). */
    static const char *KindName(Kind kind);

    /** Execute() body; the public entry points wrap it in the lock. */
    void ExecuteLocked() HENTT_REQUIRES(mutex_);

    CtFuture Enqueue(Kind kind, std::size_t a, std::size_t b,
                     const RelinKey *rk = nullptr)
        HENTT_EXCLUDES(mutex_);
    std::size_t CheckOwned(const CtFuture &f) const;
    /** Settle node @p i as failed with @p status (provenance frame
     *  "HeOpGraph node i (Kind)" appended). */
    void SettleFailed(std::size_t i, Status status)
        HENTT_REQUIRES(mutex_);

    const BgvScheme &scheme_;
    const RelinKey *rk_;
    // Serialises node appends, execution, and future reads; ordered
    // before the arena and pool mutexes the batched kernels take.
    mutable Mutex mutex_;
    // Deque, not vector: references returned by CtFuture::get() must
    // stay valid while the graph keeps growing (ops append nodes).
    std::deque<Node> nodes_ HENTT_GUARDED_BY(mutex_);
};

}  // namespace hentt::he

#endif  // HENTT_HE_HE_GRAPH_H
