/**
 * @file
 * Ciphertext-level batched HE kernels — the execution layer the paper's
 * batching argument (Section V-A) calls for at the *operation* level:
 * every stage of an HE op is one thread-pool dispatch spanning all
 * ciphertexts x parts x limbs, instead of one dispatch per RnsPoly.
 *
 * The kernels here are the shared implementation behind both the scalar
 * BgvScheme API (a batch of one) and the HeOpGraph wavefront scheduler
 * (a batch of every independent op in a dependency level). NTT-heavy
 * stages run the end-to-end lazy pipeline: forward transforms keep rows
 * in [0, 4p) (RnsPoly::ToEvaluationLazy) and feed Barrett element-wise
 * products directly, eliding the fold pass the per-poly path pays.
 *
 * Relinearization consumes evaluation-domain keys (RelinKey stores key
 * parts NTT-transformed at keygen), so the only forward transforms per
 * Relinearize are the np digit lifts: np^2 row transforms instead of
 * the 4*np^2 the coefficient-domain formulation pays (keys re-
 * transformed per op, digits transformed once per key part).
 *
 * Relinearize and the fused RelinModSwitch draw their digit,
 * accumulator, and task-array scratch from the context's ScratchArena
 * (he/scratch_arena.h): steady-state calls perform zero heap
 * allocations, matching the RnsPoly multiply loop.
 */

#ifndef HENTT_HE_CIPHERTEXT_BATCH_H
#define HENTT_HE_CIPHERTEXT_BATCH_H

#include <span>

#include "he/bgv.h"

namespace hentt::he {

/**
 * Batched element-wise combine: out[i] = a[i] +/- b[i] for every
 * ciphertext pair, as one pool dispatch over all parts x limbs.
 *
 * @param ctx      the scheme context (levels must match per pair)
 * @param a,b      equal-length spans of operands; each pair must agree
 *                 in degree and level
 * @param out      destinations (may alias @p a elements)
 * @param subtract when true computes a - b instead of a + b
 */
void BatchAdd(const HeContext &ctx, std::span<const Ciphertext *const> a,
              std::span<const Ciphertext *const> b,
              std::span<Ciphertext *const> out, bool subtract = false);

/**
 * Batched tensor product of degree-1 ciphertext pairs: out[i] becomes
 * the degree-2 product of (a[i], b[i]). Three pool dispatches total for
 * the whole batch: one lazy forward-NTT stage over every input part x
 * limb, one tensor Hadamard stage, one inverse-NTT stage over every
 * result part x limb. Pairs with a[i] == b[i] (same pointer) take the
 * squaring fast path and share transforms.
 */
void BatchMul(const HeContext &ctx, std::span<const Ciphertext *const> a,
              std::span<const Ciphertext *const> b,
              std::span<Ciphertext *const> out);

/**
 * Batched key-switch of degree-2 ciphertexts back to degree 1 using
 * evaluation-domain keys, at each ciphertext's own level of the
 * modulus chain. Stages (each one dispatch across the batch): CRT digit
 * decomposition, lazy forward NTT of all digits (the *only* forward
 * transforms in the op), evaluation-domain gadget accumulation against
 * the level's keys, inverse NTT of the two accumulators, final add of
 * the input (c0, c1) written straight into @p out.
 *
 * All transient storage (digits, accumulators, task arrays) comes from
 * the context's ScratchArena, so once @p out has been through the op at
 * a level the steady-state call performs zero heap allocations.
 *
 * @p out[i] may alias @p in[i]; no other aliasing between the spans is
 * allowed (outputs are written in place, not staged and moved).
 */
void BatchRelinearize(const HeContext &ctx, const RelinKey &rk,
                      std::span<const Ciphertext *const> in,
                      std::span<Ciphertext *const> out);

/**
 * Fused Relinearize→ModSwitch: key-switch each degree-2 ciphertext back
 * to degree 1 *and* drop the last prime of its level in one pipeline,
 * bit-identical to BatchRelinearize followed by BatchModSwitch but with
 * the rescale folded into the Relinearize inverse stage.
 *
 * Where the unfused chain sweeps every part three more times after the
 * gadget accumulation (the (c0, c1) fold, the alpha pre-scaling pass,
 * and the divide-and-round pass), the fused stage runs the fold and the
 * alpha rescale as an epilogue of the inverse-NTT dispatch itself —
 * each accumulator row is combined and rescaled while still cache-hot,
 * and the dropped limb never leaves the inverse dispatch as output.
 * Only the divide-and-round pass (which needs the finished top row)
 * remains a standalone sweep: 2(np-1) destination rows instead of the
 * unfused 2np + 2np + 2(np-1) (see NttOpCounts::elementwise).
 *
 * Scratch policy and aliasing contract match BatchRelinearize; inputs
 * must be degree-2, coefficient-domain, with at least two primes
 * remaining. Outputs land one level down the modulus chain.
 */
void BatchRelinModSwitch(const HeContext &ctx, const RelinKey &rk,
                         std::span<const Ciphertext *const> in,
                         std::span<Ciphertext *const> out);

/**
 * Batched BGV modulus switch: every ciphertext drops the last prime of
 * its level, scaling noise down by ~q_k while preserving the plaintext.
 * Two dispatches for the whole batch: the alpha pre-scaling pass and
 * the divide-and-round pass over all parts x target limbs.
 *
 * @pre every input in coefficient domain with at least two primes.
 */
void BatchModSwitch(const HeContext &ctx,
                    std::span<const Ciphertext *const> in,
                    std::span<Ciphertext *const> out);

}  // namespace hentt::he

#endif  // HENTT_HE_CIPHERTEXT_BATCH_H
