/**
 * @file
 * Ciphertext-level batched HE kernels — the execution layer the paper's
 * batching argument (Section V-A) calls for at the *operation* level:
 * every stage of an HE op is one thread-pool dispatch spanning all
 * ciphertexts x parts x limbs, instead of one dispatch per RnsPoly.
 *
 * The kernels here are the shared implementation behind both the scalar
 * BgvScheme API (a batch of one) and the HeOpGraph wavefront scheduler
 * (a batch of every independent op in a dependency level). NTT-heavy
 * stages run the end-to-end lazy pipeline: forward transforms keep rows
 * in [0, 4p) (RnsPoly::ToEvaluationLazy) and feed Barrett element-wise
 * products directly, eliding the fold pass the per-poly path pays.
 *
 * Relinearization consumes evaluation-domain keys (RelinKey stores key
 * parts NTT-transformed at keygen), so the only forward transforms per
 * Relinearize are the np digit lifts: np^2 row transforms instead of
 * the 4*np^2 the coefficient-domain formulation pays (keys re-
 * transformed per op, digits transformed once per key part).
 */

#ifndef HENTT_HE_CIPHERTEXT_BATCH_H
#define HENTT_HE_CIPHERTEXT_BATCH_H

#include <span>

#include "he/bgv.h"

namespace hentt::he {

/**
 * Batched element-wise combine: out[i] = a[i] +/- b[i] for every
 * ciphertext pair, as one pool dispatch over all parts x limbs.
 *
 * @param ctx      the scheme context (levels must match per pair)
 * @param a,b      equal-length spans of operands; each pair must agree
 *                 in degree and level
 * @param out      destinations (may alias @p a elements)
 * @param subtract when true computes a - b instead of a + b
 */
void BatchAdd(const HeContext &ctx, std::span<const Ciphertext *const> a,
              std::span<const Ciphertext *const> b,
              std::span<Ciphertext *const> out, bool subtract = false);

/**
 * Batched tensor product of degree-1 ciphertext pairs: out[i] becomes
 * the degree-2 product of (a[i], b[i]). Three pool dispatches total for
 * the whole batch: one lazy forward-NTT stage over every input part x
 * limb, one tensor Hadamard stage, one inverse-NTT stage over every
 * result part x limb. Pairs with a[i] == b[i] (same pointer) take the
 * squaring fast path and share transforms.
 */
void BatchMul(const HeContext &ctx, std::span<const Ciphertext *const> a,
              std::span<const Ciphertext *const> b,
              std::span<Ciphertext *const> out);

/**
 * Batched key-switch of degree-2 ciphertexts back to degree 1 using
 * evaluation-domain keys, at each ciphertext's own level of the
 * modulus chain. Stages (each one dispatch across the batch): CRT digit
 * decomposition, lazy forward NTT of all digits (the *only* forward
 * transforms in the op), evaluation-domain gadget accumulation against
 * the level's keys, inverse NTT of the two accumulators, final add of
 * the input (c0, c1).
 */
void BatchRelinearize(const HeContext &ctx, const RelinKey &rk,
                      std::span<const Ciphertext *const> in,
                      std::span<Ciphertext *const> out);

/**
 * Batched BGV modulus switch: every ciphertext drops the last prime of
 * its level, scaling noise down by ~q_k while preserving the plaintext.
 * Two dispatches for the whole batch: the alpha pre-scaling pass and
 * the divide-and-round pass over all parts x target limbs.
 *
 * @pre every input in coefficient domain with at least two primes.
 */
void BatchModSwitch(const HeContext &ctx,
                    std::span<const Ciphertext *const> in,
                    std::span<Ciphertext *const> out);

}  // namespace hentt::he

#endif  // HENTT_HE_CIPHERTEXT_BATCH_H
