#include "he/params.h"

#include <cstring>
#include <map>
#include <stdexcept>
#include <tuple>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/mutex.h"
#include "common/primegen.h"

namespace hentt::he {

void
HeParams::Validate() const
{
    if (!IsPowerOfTwo(degree) || degree < 8) {
        throw std::invalid_argument("degree must be a power of two >= 8");
    }
    if (prime_count == 0) {
        throw std::invalid_argument("at least one RNS prime required");
    }
    if (prime_bits < 30 || prime_bits > 61) {
        throw std::invalid_argument("prime_bits must lie in [30, 61]");
    }
    if (plain_modulus < 2) {
        throw std::invalid_argument("plain modulus must be >= 2");
    }
    if (noise_stddev <= 0.0) {
        throw std::invalid_argument("noise stddev must be positive");
    }
}

std::shared_ptr<const RnsNttContext>
HeEngineState::level_context(std::size_t prime_count) const
{
    if (prime_count == 0 || prime_count > levels_.size()) {
        throw std::invalid_argument("no such level in the modulus chain");
    }
    return levels_[prime_count - 1];
}

HeEngineState::HeEngineState(const HeParams &params) : params_(params)
{
    params_.Validate();
    auto basis = std::make_shared<RnsBasis>(
        params_.degree, params_.prime_bits, params_.prime_count);
    for (u64 p : basis->primes()) {
        if (p % params_.plain_modulus == 0) {
            throw std::invalid_argument("plain modulus divides a prime");
        }
    }
    ntt_ctx_ = std::make_shared<RnsNttContext>(params_.degree, basis);

    // One context per level of the modulus chain (prefix bases).
    levels_.resize(params_.prime_count);
    levels_.back() = ntt_ctx_;
    for (std::size_t count = 1; count < params_.prime_count; ++count) {
        std::vector<u64> prefix(basis->primes().begin(),
                                basis->primes().begin() + count);
        levels_[count - 1] = std::make_shared<RnsNttContext>(
            params_.degree,
            std::make_shared<RnsBasis>(std::move(prefix)));
    }

    // q_hat[L][j][k] = (Q_L / q_j) mod q_k, computed without big
    // integers: the product of the first L primes except q_j, reduced
    // mod q_k on the fly. One table per level of the modulus chain so
    // relinearization keys can be generated (and digits decomposed) at
    // every level.
    const RnsBasis &b = ntt_ctx_->basis();
    const std::size_t np = b.prime_count();
    q_hat_levels_.resize(np);
    for (std::size_t level = 1; level <= np; ++level) {
        std::vector<u64> &table = q_hat_levels_[level - 1];
        table.assign(level * level, 1);
        for (std::size_t j = 0; j < level; ++j) {
            for (std::size_t k = 0; k < level; ++k) {
                u64 acc = 1;
                const u64 pk = b.prime(k);
                for (std::size_t i = 0; i < level; ++i) {
                    if (i == j) {
                        continue;
                    }
                    acc = MulModNative(acc, b.prime(i) % pk, pk);
                }
                table[j * level + k] = acc;
            }
        }
    }
}

namespace {

// Cache key: every HeParams field. noise_stddev keyed by bit pattern so
// distinct doubles never alias (and NaN never matches itself into a
// stale entry).
using EngineKey = std::tuple<std::size_t, std::size_t, unsigned, u64, u64>;

EngineKey
MakeEngineKey(const HeParams &p)
{
    u64 sigma_bits = 0;
    static_assert(sizeof(p.noise_stddev) == sizeof(sigma_bits));
    std::memcpy(&sigma_bits, &p.noise_stddev, sizeof(sigma_bits));
    return {p.degree, p.prime_count, p.prime_bits, p.plain_modulus,
            sigma_bits};
}

Mutex g_engine_mutex;
std::map<EngineKey, std::weak_ptr<const HeEngineState>> g_engine_cache
    HENTT_GUARDED_BY(g_engine_mutex);

}  // namespace

std::shared_ptr<const HeEngineState>
HeEngineState::Acquire(const HeParams &params)
{
    const EngineKey key = MakeEngineKey(params);
    {
        MutexLock lock(g_engine_mutex);
        auto it = g_engine_cache.find(key);
        if (it != g_engine_cache.end()) {
            if (auto state = it->second.lock()) {
                return state;
            }
        }
    }
    // Build outside the lock: a slow table build must not stall
    // unrelated lookups. Two racing builders both succeed; the second
    // to publish wins the cache slot and the loser's state is simply
    // uncached (still valid).
    auto state = std::make_shared<const HeEngineState>(params);
    MutexLock lock(g_engine_mutex);
    g_engine_cache[key] = state;
    return state;
}

HeContext::HeContext(const HeParams &params)
    : state_(HeEngineState::Acquire(params)),
      scratch_(std::make_shared<ScratchArena>())
{
}

HeContext::HeContext(std::shared_ptr<const HeEngineState> state,
                     std::shared_ptr<ScratchArena> arena)
    : state_(std::move(state)), scratch_(std::move(arena))
{
    if (state_ == nullptr) {
        throw std::invalid_argument("HeContext needs an engine state");
    }
    if (scratch_ == nullptr) {
        scratch_ = std::make_shared<ScratchArena>();
    }
}

}  // namespace hentt::he
