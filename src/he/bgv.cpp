#include "he/bgv.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "common/modarith.h"
#include "rns/crt.h"

namespace hentt::he {

namespace {

/** Copy of @p x transformed to the evaluation domain if needed. */
RnsPoly
ToEval(const RnsPoly &x)
{
    RnsPoly y = x;
    if (y.domain() == RnsPoly::Domain::kCoefficient) {
        y.ToEvaluation();
    }
    return y;
}

}  // namespace

BgvScheme::BgvScheme(std::shared_ptr<const HeContext> ctx, u64 seed)
    : ctx_(std::move(ctx)), rng_(seed)
{
}

SecretKey
BgvScheme::KeyGen()
{
    return SecretKey{SampleTernary(*ctx_, rng_)};
}

RnsPoly
BgvScheme::EncodePlain(const Plaintext &m,
                       std::shared_ptr<const RnsNttContext> level) const
{
    if (m.size() > ctx_->degree()) {
        throw std::invalid_argument("plaintext longer than ring degree");
    }
    const u64 t = ctx_->params().plain_modulus;
    const RnsBasis &basis = level->basis();
    RnsPoly out(std::move(level));
    for (std::size_t k = 0; k < m.size(); ++k) {
        const u64 v = m[k] % t;
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            out.row(i)[k] = v % basis.prime(i);
        }
    }
    return out;
}

Ciphertext
BgvScheme::Encrypt(const SecretKey &sk, const Plaintext &m)
{
    const u64 t = ctx_->params().plain_modulus;
    RnsPoly a = SampleUniform(*ctx_, rng_);
    RnsPoly e = SampleError(*ctx_, rng_);
    e.ScalarMulInPlace(t);
    RnsPoly c0 = EncodePlain(m, ctx_->ntt_context());
    c0 += e;
    c0 -= RnsPoly::Multiply(a, sk.s);
    return Ciphertext{{std::move(c0), std::move(a)}};
}

RnsPoly
BgvScheme::KeyAtLevel(const SecretKey &sk,
                      std::shared_ptr<const RnsNttContext> level) const
{
    // The ternary key's residues at a lower level are simply the prefix
    // rows (the same small integer coefficients mod fewer primes).
    RnsPoly out(std::move(level));
    for (std::size_t i = 0; i < out.prime_count(); ++i) {
        const std::span<const u64> src = sk.s.row(i);
        std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
}

RnsPoly
BgvScheme::InnerProduct(const SecretKey &sk, const Ciphertext &ct) const
{
    if (ct.parts.size() < 2 || ct.parts.size() > 3) {
        throw std::invalid_argument("ciphertext degree must be 1 or 2");
    }
    const RnsPoly s = KeyAtLevel(
        sk, ctx_->level_context(ct.parts[0].prime_count()));
    RnsPoly acc = RnsPoly::Multiply(ct.parts[1], s);
    acc += ct.parts[0];
    if (ct.parts.size() == 3) {
        RnsPoly s2 = RnsPoly::Multiply(s, s);
        acc += RnsPoly::Multiply(ct.parts[2], s2);
    }
    return acc;
}

Plaintext
BgvScheme::Decrypt(const SecretKey &sk, const Ciphertext &ct) const
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsPoly d = InnerProduct(sk, ct);
    const RnsBasis &basis = d.context().basis();
    Plaintext out(ctx_->degree());
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t k = 0; k < ctx_->degree(); ++k) {
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            residues[i] = d.row(i)[k];
        }
        const auto [mag, negative] = CrtComposeCentered(residues, basis);
        const u64 r = mag % t;
        out[k] = (negative && r != 0) ? t - r : r;
    }
    return out;
}

Ciphertext
BgvScheme::Add(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.parts.size() != b.parts.size()) {
        throw std::invalid_argument("ciphertext degrees differ");
    }
    Ciphertext out;
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
        out.parts.push_back(a.parts[i] + b.parts[i]);
    }
    return out;
}

Ciphertext
BgvScheme::Sub(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.parts.size() != b.parts.size()) {
        throw std::invalid_argument("ciphertext degrees differ");
    }
    Ciphertext out;
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
        out.parts.push_back(a.parts[i] - b.parts[i]);
    }
    return out;
}

Ciphertext
BgvScheme::MulPlain(const Ciphertext &ct, const Plaintext &m) const
{
    RnsPoly pm = EncodePlain(m, ctx_->level_context(Level(ct)));
    pm.ToEvaluation();  // transform the plaintext once, not per part
    Ciphertext out;
    for (const RnsPoly &part : ct.parts) {
        RnsPoly fp = ToEval(part);
        fp *= pm;
        fp.ToCoefficient();
        out.parts.push_back(std::move(fp));
    }
    return out;
}

Ciphertext
BgvScheme::Mul(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.parts.size() != 2 || b.parts.size() != 2) {
        throw std::invalid_argument(
            "Mul expects degree-1 ciphertexts; relinearize first");
    }
    // Transform each input part exactly once (4 forward NTT batches;
    // the per-product formulation re-transformed a0 and a1, for 8) and
    // fuse the cross term so the tensor product allocates no partial-
    // product temporaries. Squaring reuses a's transforms outright.
    const bool squaring = &a == &b;
    const RnsPoly a0 = ToEval(a.parts[0]);
    const RnsPoly a1 = ToEval(a.parts[1]);
    std::optional<RnsPoly> tb0, tb1;
    if (!squaring) {
        tb0 = ToEval(b.parts[0]);
        tb1 = ToEval(b.parts[1]);
    }
    const RnsPoly &b0 = squaring ? a0 : *tb0;
    const RnsPoly &b1 = squaring ? a1 : *tb1;

    RnsPoly c0 = a0 * b0;
    RnsPoly c1 = a0 * b1;
    c1.MultiplyAccumulate(a1, b0);
    RnsPoly c2 = a1 * b1;
    c0.ToCoefficient();
    c1.ToCoefficient();
    c2.ToCoefficient();

    Ciphertext out;
    out.parts.push_back(std::move(c0));
    out.parts.push_back(std::move(c1));
    out.parts.push_back(std::move(c2));
    return out;
}

RelinKey
BgvScheme::MakeRelinKey(const SecretKey &sk)
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsBasis &basis = ctx_->basis();
    const std::size_t np = basis.prime_count();
    RnsPoly s2 = RnsPoly::Multiply(sk.s, sk.s);

    RelinKey rk;
    for (std::size_t j = 0; j < np; ++j) {
        RnsPoly a = SampleUniform(*ctx_, rng_);
        RnsPoly e = SampleError(*ctx_, rng_);
        // gadget_j = (Q / q_j) mod q_k for every row k.
        std::vector<u64> gadget(np);
        for (std::size_t k = 0; k < np; ++k) {
            gadget[k] = ctx_->q_hat(j, k);
        }
        RnsPoly gs2 = s2;
        gs2.ScalarMulRowsInPlace(gadget);
        e.ScalarMulInPlace(t);
        RnsPoly b = std::move(e);
        b -= RnsPoly::Multiply(a, sk.s);
        b += gs2;
        rk.b.push_back(std::move(b));
        rk.a.push_back(std::move(a));
    }
    return rk;
}

Ciphertext
BgvScheme::Relinearize(const Ciphertext &ct, const RelinKey &rk) const
{
    if (ct.parts.size() != 3) {
        throw std::invalid_argument("relinearization expects degree 2");
    }
    const auto &ntt_ctx = *ctx_->ntt_context();
    const RnsBasis &basis = ctx_->basis();
    const std::size_t np = basis.prime_count();
    const RnsPoly &c2 = ct.parts[2];

    RnsPoly c0 = ct.parts[0];
    RnsPoly c1 = ct.parts[1];
    RnsPoly digit(ctx_->ntt_context());
    for (std::size_t j = 0; j < np; ++j) {
        // Digit j: d_j = [c2 * (Q/q_j)^{-1}]_{q_j}, a word-sized value
        // lifted into every RNS row. The per-element products run
        // through Shoup (fixed scalar) and Barrett (row lift) instead
        // of native `%`.
        const u64 qj = basis.prime(j);
        const u64 q_tilde = InvMod(ctx_->q_hat(j, j) % qj, qj);
        const u64 q_tilde_bar = ShoupPrecompute(q_tilde, qj);
        for (std::size_t k = 0; k < ctx_->degree(); ++k) {
            const u64 v =
                MulModShoup(c2.row(j)[k], q_tilde, q_tilde_bar, qj);
            for (std::size_t i = 0; i < np; ++i) {
                digit.row(i)[k] = ntt_ctx.reducer(i).Reduce(v);
            }
        }
        c0 += RnsPoly::Multiply(digit, rk.b[j]);
        c1 += RnsPoly::Multiply(digit, rk.a[j]);
    }
    return Ciphertext{{std::move(c0), std::move(c1)}};
}

Ciphertext
BgvScheme::ModSwitch(const Ciphertext &ct) const
{
    const std::size_t np_cur = Level(ct);
    if (np_cur < 2) {
        throw std::invalid_argument(
            "cannot modulus-switch below one prime");
    }
    const u64 t = ctx_->params().plain_modulus;
    const auto cur = ctx_->level_context(np_cur);
    const RnsBasis &basis = cur->basis();
    auto next = ctx_->level_context(np_cur - 1);
    const std::size_t k = np_cur - 1;
    const u64 qk = basis.prime(k);
    const u64 t_inv_qk = InvMod(t % qk, qk);
    const u64 t_inv_qk_bar = ShoupPrecompute(t_inv_qk, qk);

    // Dividing by q_k scales the plaintext by q_k^{-1} mod t; pre-scale
    // every part by alpha = q_k mod t so the switch is
    // plaintext-preserving.
    const u64 alpha = qk % t;

    Ciphertext out;
    for (const RnsPoly &part_in : ct.parts) {
        if (part_in.domain() != RnsPoly::Domain::kCoefficient) {
            throw std::invalid_argument(
                "modulus switch expects coefficient domain");
        }
        const RnsPoly part = part_in.ScalarMul(alpha);
        RnsPoly switched(next);
        for (std::size_t i = 0; i < k; ++i) {
            const u64 qi = basis.prime(i);
            const BarrettReducer &red_qi = next->reducer(i);
            const u64 qk_inv = InvMod(qk % qi, qi);
            const u64 qk_inv_bar = ShoupPrecompute(qk_inv, qi);
            const u64 t_mod_qi = t % qi;
            const u64 t_mod_qi_bar = ShoupPrecompute(t_mod_qi, qi);
            const std::span<const u64> top = part.row(k);
            const std::span<const u64> src = part.row(i);
            const std::span<u64> dst = switched.row(i);
            for (std::size_t idx = 0; idx < ctx_->degree(); ++idx) {
                // delta = t * [c_k * t^{-1}]_{q_k}, centered so that
                // |delta| <= t * q_k / 2; delta == c (mod q_k) and
                // delta == 0 (mod t), making (c - delta) / q_k exact
                // and plaintext-clean.
                const u64 u =
                    MulModShoup(top[idx], t_inv_qk, t_inv_qk_bar, qk);
                u64 delta_mod_qi;
                if (u <= qk / 2) {
                    delta_mod_qi = MulModShoup(
                        red_qi.Reduce(u), t_mod_qi, t_mod_qi_bar, qi);
                } else {
                    const u64 v = qk - u;  // delta = -t * v
                    const u64 pos = MulModShoup(
                        red_qi.Reduce(v), t_mod_qi, t_mod_qi_bar, qi);
                    delta_mod_qi = pos == 0 ? 0 : qi - pos;
                }
                const u64 diff = SubMod(src[idx], delta_mod_qi, qi);
                dst[idx] = MulModShoup(diff, qk_inv, qk_inv_bar, qi);
            }
        }
        out.parts.push_back(std::move(switched));
    }
    return out;
}

double
BgvScheme::NoiseBudgetBits(const SecretKey &sk, const Ciphertext &ct) const
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsPoly d = InnerProduct(sk, ct);
    const RnsBasis &basis = d.context().basis();
    // noise = d - m (mod Q), centered; m = decrypted plaintext.
    const Plaintext m = Decrypt(sk, ct);
    std::size_t max_bits = 0;
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t k = 0; k < ctx_->degree(); ++k) {
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            const u64 p = basis.prime(i);
            residues[i] = SubMod(d.row(i)[k], m[k] % p, p);
        }
        const auto [mag, negative] = CrtComposeCentered(residues, basis);
        (void)negative;
        max_bits = std::max(max_bits, mag.BitLength());
    }
    (void)t;
    // Decryption survives while |m + t*e| < Q/2; the margin in bits is
    // the budget.
    const double q_bits = static_cast<double>(basis.log_q());
    const double noise_bits = static_cast<double>(max_bits);
    return std::max(0.0, q_bits - noise_bits - 1.0);
}

}  // namespace hentt::he
