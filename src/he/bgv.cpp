#include "he/bgv.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/modarith.h"
#include "he/ciphertext_batch.h"
#include "rns/crt.h"

namespace hentt::he {

namespace {

/** Copy of @p x transformed to the evaluation domain if needed. */
RnsPoly
ToEval(const RnsPoly &x)
{
    RnsPoly y = x;
    if (y.domain() == RnsPoly::Domain::kCoefficient) {
        y.ToEvaluation();
    }
    return y;
}

}  // namespace

BgvScheme::BgvScheme(std::shared_ptr<const HeContext> ctx, u64 seed)
    : ctx_(std::move(ctx)), rng_(seed)
{
}

SecretKey
BgvScheme::KeyGen()
{
    return SecretKey{SampleTernary(*ctx_, rng_)};
}

RnsPoly
BgvScheme::EncodePlain(const Plaintext &m,
                       std::shared_ptr<const RnsNttContext> level) const
{
    if (m.size() > ctx_->degree()) {
        throw std::invalid_argument("plaintext longer than ring degree");
    }
    const u64 t = ctx_->params().plain_modulus;
    const RnsBasis &basis = level->basis();
    RnsPoly out(std::move(level));
    for (std::size_t k = 0; k < m.size(); ++k) {
        const u64 v = m[k] % t;
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            out.row(i)[k] = v % basis.prime(i);
        }
    }
    return out;
}

Ciphertext
BgvScheme::Encrypt(const SecretKey &sk, const Plaintext &m)
{
    const u64 t = ctx_->params().plain_modulus;
    RnsPoly a = SampleUniform(*ctx_, rng_);
    RnsPoly e = SampleError(*ctx_, rng_);
    e.ScalarMulInPlace(t);
    RnsPoly c0 = EncodePlain(m, ctx_->ntt_context());
    c0 += e;
    c0 -= RnsPoly::Multiply(a, sk.s);
    return Ciphertext{{std::move(c0), std::move(a)}};
}

RnsPoly
BgvScheme::KeyAtLevel(const SecretKey &sk,
                      std::shared_ptr<const RnsNttContext> level) const
{
    // The ternary key's residues at a lower level are simply the prefix
    // rows (the same small integer coefficients mod fewer primes).
    RnsPoly out(std::move(level));
    for (std::size_t i = 0; i < out.prime_count(); ++i) {
        const std::span<const u64> src = sk.s.row(i);
        std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
}

RnsPoly
BgvScheme::InnerProduct(const SecretKey &sk, const Ciphertext &ct) const
{
    if (ct.parts.size() < 2 || ct.parts.size() > 3) {
        throw std::invalid_argument("ciphertext degree must be 1 or 2");
    }
    const RnsPoly s = KeyAtLevel(
        sk, ctx_->level_context(ct.parts[0].prime_count()));
    RnsPoly acc = RnsPoly::Multiply(ct.parts[1], s);
    acc += ct.parts[0];
    if (ct.parts.size() == 3) {
        RnsPoly s2 = RnsPoly::Multiply(s, s);
        acc += RnsPoly::Multiply(ct.parts[2], s2);
    }
    return acc;
}

Plaintext
BgvScheme::Decrypt(const SecretKey &sk, const Ciphertext &ct) const
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsPoly d = InnerProduct(sk, ct);
    const RnsBasis &basis = d.context().basis();
    Plaintext out(ctx_->degree());
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t k = 0; k < ctx_->degree(); ++k) {
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            residues[i] = d.row(i)[k];
        }
        const auto [mag, negative] = CrtComposeCentered(residues, basis);
        const u64 r = mag % t;
        out[k] = (negative && r != 0) ? t - r : r;
    }
    return out;
}

Ciphertext
BgvScheme::Add(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext out;
    const Ciphertext *lhs[] = {&a};
    const Ciphertext *rhs[] = {&b};
    Ciphertext *dst[] = {&out};
    BatchAdd(*ctx_, lhs, rhs, dst);
    return out;
}

Ciphertext
BgvScheme::Sub(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext out;
    const Ciphertext *lhs[] = {&a};
    const Ciphertext *rhs[] = {&b};
    Ciphertext *dst[] = {&out};
    BatchAdd(*ctx_, lhs, rhs, dst, /*subtract=*/true);
    return out;
}

Ciphertext
BgvScheme::MulPlain(const Ciphertext &ct, const Plaintext &m) const
{
    RnsPoly pm = EncodePlain(m, ctx_->level_context(Level(ct)));
    pm.ToEvaluation();  // transform the plaintext once, not per part
    Ciphertext out;
    for (const RnsPoly &part : ct.parts) {
        RnsPoly fp = ToEval(part);
        fp *= pm;
        fp.ToCoefficient();
        out.parts.push_back(std::move(fp));
    }
    return out;
}

Ciphertext
BgvScheme::Mul(const Ciphertext &a, const Ciphertext &b) const
{
    // A batch of one through the ciphertext-level kernel: one lazy
    // forward dispatch over all four input parts x limbs, one fused
    // tensor stage, one inverse dispatch over the three result parts.
    // Squaring (&a == &b) passes equal pointers and shares transforms.
    Ciphertext out;
    const Ciphertext *lhs[] = {&a};
    const Ciphertext *rhs[] = {&b};
    Ciphertext *dst[] = {&out};
    BatchMul(*ctx_, lhs, rhs, dst);
    return out;
}

RelinKey
BgvScheme::MakeRelinKey(const SecretKey &sk)
{
    const u64 t = ctx_->params().plain_modulus;
    const double sigma = ctx_->params().noise_stddev;
    const std::size_t np = ctx_->basis().prime_count();

    // One key set per level of the modulus chain: the gadget (Q_L/q_j)
    // depends on the level's modulus, so a modulus-switched ciphertext
    // relinearizes against keys generated for its own level.
    RelinKey rk;
    rk.levels.reserve(np);
    for (std::size_t level = 1; level <= np; ++level) {
        const auto lvl_ctx = ctx_->level_context(level);
        const RnsPoly s = KeyAtLevel(sk, lvl_ctx);
        const RnsPoly s2 = RnsPoly::Multiply(s, s);
        RelinKey::LevelKeys keys;
        keys.b.reserve(level);
        keys.a.reserve(level);
        for (std::size_t j = 0; j < level; ++j) {
            RnsPoly a = SampleUniformAt(lvl_ctx, rng_);
            RnsPoly e = SampleErrorAt(lvl_ctx, sigma, rng_);
            // gadget_j = (Q_L / q_j) mod q_k for every row k.
            std::vector<u64> gadget(level);
            for (std::size_t k = 0; k < level; ++k) {
                gadget[k] = ctx_->q_hat_level(level, j, k);
            }
            RnsPoly gs2 = s2;
            gs2.ScalarMulRowsInPlace(gadget);
            e.ScalarMulInPlace(t);
            RnsPoly b = std::move(e);
            b -= RnsPoly::Multiply(a, s);
            b += gs2;
            keys.b.push_back(std::move(b));
            keys.a.push_back(std::move(a));
        }
        // Transform the whole key set to the evaluation domain once, at
        // keygen, with a single batched dispatch; every Relinearize
        // afterwards pays zero key transforms.
        std::vector<RnsPoly *> parts;
        parts.reserve(2 * level);
        for (RnsPoly &poly : keys.b) {
            parts.push_back(&poly);
        }
        for (RnsPoly &poly : keys.a) {
            parts.push_back(&poly);
        }
        RnsPoly::BatchToEvaluation(parts);
        rk.levels.push_back(std::move(keys));
    }
    return rk;
}

Ciphertext
BgvScheme::Relinearize(const Ciphertext &ct, const RelinKey &rk) const
{
    // A batch of one through the ciphertext-level kernel: digit
    // decomposition, one lazy forward dispatch over all digits (the
    // only forward NTTs in the op), evaluation-domain accumulation
    // against this level's keys, and a single inverse pair.
    Ciphertext out;
    const Ciphertext *src[] = {&ct};
    Ciphertext *dst[] = {&out};
    BatchRelinearize(*ctx_, rk, src, dst);
    return out;
}

Ciphertext
BgvScheme::RelinModSwitch(const Ciphertext &ct, const RelinKey &rk) const
{
    // A batch of one through the fused kernel: the modulus-switch
    // rescale rides the relinearization inverse dispatch, so the only
    // standalone element-wise sweep is the divide-and-round.
    Ciphertext out;
    const Ciphertext *src[] = {&ct};
    Ciphertext *dst[] = {&out};
    BatchRelinModSwitch(*ctx_, rk, src, dst);
    return out;
}

Ciphertext
BgvScheme::ModSwitch(const Ciphertext &ct) const
{
    // A batch of one through the ciphertext-level kernel: the alpha
    // pre-scaling pass and the divide-and-round pass each span all
    // parts x limbs in one dispatch.
    Ciphertext out;
    const Ciphertext *src[] = {&ct};
    Ciphertext *dst[] = {&out};
    BatchModSwitch(*ctx_, src, dst);
    return out;
}

double
BgvScheme::NoiseBudgetBits(const SecretKey &sk, const Ciphertext &ct) const
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsPoly d = InnerProduct(sk, ct);
    const RnsBasis &basis = d.context().basis();
    // noise = d - m (mod Q), centered; m = decrypted plaintext.
    const Plaintext m = Decrypt(sk, ct);
    std::size_t max_bits = 0;
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t k = 0; k < ctx_->degree(); ++k) {
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            const u64 p = basis.prime(i);
            residues[i] = SubMod(d.row(i)[k], m[k] % p, p);
        }
        const auto [mag, negative] = CrtComposeCentered(residues, basis);
        (void)negative;
        max_bits = std::max(max_bits, mag.BitLength());
    }
    (void)t;
    // Decryption survives while |m + t*e| < Q/2; the margin in bits is
    // the budget.
    const double q_bits = static_cast<double>(basis.log_q());
    const double noise_bits = static_cast<double>(max_bits);
    return std::max(0.0, q_bits - noise_bits - 1.0);
}

namespace {

/** Run @p fn, converting any escape into a Result error whose
 *  outermost provenance frame names the public op. */
template <typename Fn>
Result<Ciphertext>
Guarded(const char *op, Fn &&fn)
{
    try {
        return Result<Ciphertext>(fn());
    } catch (...) {
        return Result<Ciphertext>(CurrentExceptionToStatus().WithFrame(
            std::string("BgvScheme::") + op));
    }
}

}  // namespace

Result<Ciphertext>
BgvScheme::TryAdd(const Ciphertext &a, const Ciphertext &b) const
{
    return Guarded("TryAdd", [&] { return Add(a, b); });
}

Result<Ciphertext>
BgvScheme::TrySub(const Ciphertext &a, const Ciphertext &b) const
{
    return Guarded("TrySub", [&] { return Sub(a, b); });
}

Result<Ciphertext>
BgvScheme::TryMul(const Ciphertext &a, const Ciphertext &b) const
{
    return Guarded("TryMul", [&] { return Mul(a, b); });
}

Result<Ciphertext>
BgvScheme::TryRelinearize(const Ciphertext &ct, const RelinKey &rk) const
{
    return Guarded("TryRelinearize",
                   [&] { return Relinearize(ct, rk); });
}

Result<Ciphertext>
BgvScheme::TryRelinModSwitch(const Ciphertext &ct,
                             const RelinKey &rk) const
{
    return Guarded("TryRelinModSwitch",
                   [&] { return RelinModSwitch(ct, rk); });
}

Result<Ciphertext>
BgvScheme::TryModSwitch(const Ciphertext &ct) const
{
    return Guarded("TryModSwitch", [&] { return ModSwitch(ct); });
}

}  // namespace hentt::he
