#include "he/bgv.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/modarith.h"
#include "rns/crt.h"

namespace hentt::he {

namespace {

/** Multiply row i of @p poly by a per-row scalar (value mod q_i). */
RnsPoly
PerRowScalarMul(const RnsPoly &poly, const HeContext &ctx,
                const std::vector<u64> &row_scalars)
{
    RnsPoly out = poly;
    const RnsBasis &basis = ctx.basis();
    for (std::size_t i = 0; i < basis.prime_count(); ++i) {
        const u64 p = basis.prime(i);
        const u64 s = row_scalars[i] % p;
        for (u64 &x : out.row(i)) {
            x = MulModNative(x, s, p);
        }
    }
    return out;
}

}  // namespace

BgvScheme::BgvScheme(std::shared_ptr<const HeContext> ctx, u64 seed)
    : ctx_(std::move(ctx)), rng_(seed)
{
}

SecretKey
BgvScheme::KeyGen()
{
    return SecretKey{SampleTernary(*ctx_, rng_)};
}

RnsPoly
BgvScheme::EncodePlain(const Plaintext &m,
                       std::shared_ptr<const RnsNttContext> level) const
{
    if (m.size() > ctx_->degree()) {
        throw std::invalid_argument("plaintext longer than ring degree");
    }
    const u64 t = ctx_->params().plain_modulus;
    const RnsBasis &basis = level->basis();
    RnsPoly out(std::move(level));
    for (std::size_t k = 0; k < m.size(); ++k) {
        const u64 v = m[k] % t;
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            out.row(i)[k] = v % basis.prime(i);
        }
    }
    return out;
}

Ciphertext
BgvScheme::Encrypt(const SecretKey &sk, const Plaintext &m)
{
    const u64 t = ctx_->params().plain_modulus;
    RnsPoly a = SampleUniform(*ctx_, rng_);
    RnsPoly e = SampleError(*ctx_, rng_);
    RnsPoly as = RnsPoly::Multiply(a, sk.s);
    RnsPoly c0 =
        EncodePlain(m, ctx_->ntt_context()) + e.ScalarMul(t) - as;
    return Ciphertext{{std::move(c0), std::move(a)}};
}

RnsPoly
BgvScheme::KeyAtLevel(const SecretKey &sk,
                      std::shared_ptr<const RnsNttContext> level) const
{
    // The ternary key's residues at a lower level are simply the prefix
    // rows (the same small integer coefficients mod fewer primes).
    RnsPoly out(std::move(level));
    for (std::size_t i = 0; i < out.prime_count(); ++i) {
        out.row(i) = sk.s.row(i);
    }
    return out;
}

RnsPoly
BgvScheme::InnerProduct(const SecretKey &sk, const Ciphertext &ct) const
{
    if (ct.parts.size() < 2 || ct.parts.size() > 3) {
        throw std::invalid_argument("ciphertext degree must be 1 or 2");
    }
    const RnsPoly s = KeyAtLevel(
        sk, ctx_->level_context(ct.parts[0].prime_count()));
    RnsPoly acc = ct.parts[0] + RnsPoly::Multiply(ct.parts[1], s);
    if (ct.parts.size() == 3) {
        RnsPoly s2 = RnsPoly::Multiply(s, s);
        acc = acc + RnsPoly::Multiply(ct.parts[2], s2);
    }
    return acc;
}

Plaintext
BgvScheme::Decrypt(const SecretKey &sk, const Ciphertext &ct) const
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsPoly d = InnerProduct(sk, ct);
    const RnsBasis &basis = d.context().basis();
    Plaintext out(ctx_->degree());
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t k = 0; k < ctx_->degree(); ++k) {
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            residues[i] = d.row(i)[k];
        }
        const auto [mag, negative] = CrtComposeCentered(residues, basis);
        const u64 r = mag % t;
        out[k] = (negative && r != 0) ? t - r : r;
    }
    return out;
}

Ciphertext
BgvScheme::Add(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.parts.size() != b.parts.size()) {
        throw std::invalid_argument("ciphertext degrees differ");
    }
    Ciphertext out;
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
        out.parts.push_back(a.parts[i] + b.parts[i]);
    }
    return out;
}

Ciphertext
BgvScheme::Sub(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.parts.size() != b.parts.size()) {
        throw std::invalid_argument("ciphertext degrees differ");
    }
    Ciphertext out;
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
        out.parts.push_back(a.parts[i] - b.parts[i]);
    }
    return out;
}

Ciphertext
BgvScheme::MulPlain(const Ciphertext &ct, const Plaintext &m) const
{
    const RnsPoly pm = EncodePlain(
        m, ctx_->level_context(Level(ct)));
    Ciphertext out;
    for (const RnsPoly &part : ct.parts) {
        out.parts.push_back(RnsPoly::Multiply(part, pm));
    }
    return out;
}

Ciphertext
BgvScheme::Mul(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.parts.size() != 2 || b.parts.size() != 2) {
        throw std::invalid_argument(
            "Mul expects degree-1 ciphertexts; relinearize first");
    }
    Ciphertext out;
    out.parts.push_back(RnsPoly::Multiply(a.parts[0], b.parts[0]));
    out.parts.push_back(RnsPoly::Multiply(a.parts[0], b.parts[1]) +
                        RnsPoly::Multiply(a.parts[1], b.parts[0]));
    out.parts.push_back(RnsPoly::Multiply(a.parts[1], b.parts[1]));
    return out;
}

RelinKey
BgvScheme::MakeRelinKey(const SecretKey &sk)
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsBasis &basis = ctx_->basis();
    const std::size_t np = basis.prime_count();
    RnsPoly s2 = RnsPoly::Multiply(sk.s, sk.s);

    RelinKey rk;
    for (std::size_t j = 0; j < np; ++j) {
        RnsPoly a = SampleUniform(*ctx_, rng_);
        RnsPoly e = SampleError(*ctx_, rng_);
        // gadget_j = (Q / q_j) mod q_k for every row k.
        std::vector<u64> gadget(np);
        for (std::size_t k = 0; k < np; ++k) {
            gadget[k] = ctx_->q_hat(j, k);
        }
        RnsPoly b = e.ScalarMul(t) - RnsPoly::Multiply(a, sk.s) +
                    PerRowScalarMul(s2, *ctx_, gadget);
        rk.b.push_back(std::move(b));
        rk.a.push_back(std::move(a));
    }
    return rk;
}

Ciphertext
BgvScheme::Relinearize(const Ciphertext &ct, const RelinKey &rk) const
{
    if (ct.parts.size() != 3) {
        throw std::invalid_argument("relinearization expects degree 2");
    }
    const RnsBasis &basis = ctx_->basis();
    const std::size_t np = basis.prime_count();
    const RnsPoly &c2 = ct.parts[2];

    RnsPoly c0 = ct.parts[0];
    RnsPoly c1 = ct.parts[1];
    for (std::size_t j = 0; j < np; ++j) {
        // Digit j: d_j = [c2 * (Q/q_j)^{-1}]_{q_j}, a word-sized value
        // lifted into every RNS row.
        const u64 qj = basis.prime(j);
        const u64 q_tilde = InvMod(ctx_->q_hat(j, j) % qj, qj);
        RnsPoly digit(ctx_->ntt_context());
        for (std::size_t k = 0; k < ctx_->degree(); ++k) {
            const u64 v = MulModNative(c2.row(j)[k], q_tilde, qj);
            for (std::size_t i = 0; i < np; ++i) {
                digit.row(i)[k] = v % basis.prime(i);
            }
        }
        c0 = c0 + RnsPoly::Multiply(digit, rk.b[j]);
        c1 = c1 + RnsPoly::Multiply(digit, rk.a[j]);
    }
    return Ciphertext{{std::move(c0), std::move(c1)}};
}

Ciphertext
BgvScheme::ModSwitch(const Ciphertext &ct) const
{
    const std::size_t np_cur = Level(ct);
    if (np_cur < 2) {
        throw std::invalid_argument(
            "cannot modulus-switch below one prime");
    }
    const u64 t = ctx_->params().plain_modulus;
    const RnsBasis &basis =
        ctx_->level_context(np_cur)->basis();
    auto next = ctx_->level_context(np_cur - 1);
    const std::size_t k = np_cur - 1;
    const u64 qk = basis.prime(k);
    const u64 t_inv_qk = InvMod(t % qk, qk);

    // Dividing by q_k scales the plaintext by q_k^{-1} mod t; pre-scale
    // every part by alpha = q_k mod t so the switch is
    // plaintext-preserving.
    const u64 alpha = qk % t;

    Ciphertext out;
    for (const RnsPoly &part_in : ct.parts) {
        if (part_in.domain() != RnsPoly::Domain::kCoefficient) {
            throw std::invalid_argument(
                "modulus switch expects coefficient domain");
        }
        const RnsPoly part = part_in.ScalarMul(alpha);
        RnsPoly switched(next);
        for (std::size_t i = 0; i < k; ++i) {
            const u64 qi = basis.prime(i);
            const u64 qk_inv = InvMod(qk % qi, qi);
            const u64 t_mod_qi = t % qi;
            for (std::size_t idx = 0; idx < ctx_->degree(); ++idx) {
                // delta = t * [c_k * t^{-1}]_{q_k}, centered so that
                // |delta| <= t * q_k / 2; delta == c (mod q_k) and
                // delta == 0 (mod t), making (c - delta) / q_k exact
                // and plaintext-clean.
                const u64 ck = part.row(k)[idx];
                const u64 u = MulModNative(ck, t_inv_qk, qk);
                u64 delta_mod_qi;
                if (u <= qk / 2) {
                    delta_mod_qi = MulModNative(t_mod_qi, u % qi, qi);
                } else {
                    const u64 v = qk - u;  // delta = -t * v
                    const u64 pos = MulModNative(t_mod_qi, v % qi, qi);
                    delta_mod_qi = pos == 0 ? 0 : qi - pos;
                }
                const u64 diff =
                    SubMod(part.row(i)[idx], delta_mod_qi, qi);
                switched.row(i)[idx] = MulModNative(diff, qk_inv, qi);
            }
        }
        out.parts.push_back(std::move(switched));
    }
    return out;
}

double
BgvScheme::NoiseBudgetBits(const SecretKey &sk, const Ciphertext &ct) const
{
    const u64 t = ctx_->params().plain_modulus;
    const RnsPoly d = InnerProduct(sk, ct);
    const RnsBasis &basis = d.context().basis();
    // noise = d - m (mod Q), centered; m = decrypted plaintext.
    const Plaintext m = Decrypt(sk, ct);
    std::size_t max_bits = 0;
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t k = 0; k < ctx_->degree(); ++k) {
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            const u64 p = basis.prime(i);
            residues[i] = SubMod(d.row(i)[k], m[k] % p, p);
        }
        const auto [mag, negative] = CrtComposeCentered(residues, basis);
        (void)negative;
        max_bits = std::max(max_bits, mag.BitLength());
    }
    (void)t;
    // Decryption survives while |m + t*e| < Q/2; the margin in bits is
    // the budget.
    const double q_bits = static_cast<double>(basis.log_q());
    const double noise_bits = static_cast<double>(max_bits);
    return std::max(0.0, q_bits - noise_bits - 1.0);
}

}  // namespace hentt::he
