#include "he/sampling.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace hentt::he {

RnsPoly
SampleUniformAt(std::shared_ptr<const RnsNttContext> level,
                Xoshiro256 &rng)
{
    RnsPoly out(std::move(level));
    const RnsBasis &basis = out.context().basis();
    for (std::size_t i = 0; i < basis.prime_count(); ++i) {
        const u64 p = basis.prime(i);
        for (u64 &x : out.row(i)) {
            x = rng.NextBelow(p);
        }
    }
    return out;
}

RnsPoly
SampleUniform(const HeContext &ctx, Xoshiro256 &rng)
{
    return SampleUniformAt(ctx.ntt_context(), rng);
}

void
SetSignedCoefficient(RnsPoly &poly, std::size_t k, long long value)
{
    const RnsBasis &basis = poly.context().basis();
    for (std::size_t i = 0; i < basis.prime_count(); ++i) {
        const u64 p = basis.prime(i);
        if (value >= 0) {
            poly.row(i)[k] = static_cast<u64>(value) % p;
        } else {
            poly.row(i)[k] =
                p - (static_cast<u64>(-value) % p);
            if (poly.row(i)[k] == p) {
                poly.row(i)[k] = 0;
            }
        }
    }
}

RnsPoly
SampleTernary(const HeContext &ctx, Xoshiro256 &rng)
{
    RnsPoly out(ctx.ntt_context());
    for (std::size_t k = 0; k < ctx.degree(); ++k) {
        const u64 r = rng.NextBelow(3);
        SetSignedCoefficient(out, k, static_cast<long long>(r) - 1);
    }
    return out;
}

RnsPoly
SampleErrorAt(std::shared_ptr<const RnsNttContext> level, double sigma,
              Xoshiro256 &rng)
{
    RnsPoly out(std::move(level));
    for (std::size_t k = 0; k < out.degree(); ++k) {
        const long long e =
            static_cast<long long>(std::llround(rng.NextGaussian() *
                                                sigma));
        SetSignedCoefficient(out, k, e);
    }
    return out;
}

RnsPoly
SampleCbd(const HeContext &ctx, unsigned eta, Xoshiro256 &rng)
{
    if (eta == 0 || eta > 64) {
        throw std::invalid_argument("SampleCbd: eta must be in [1, 64]");
    }
    const u64 mask =
        eta == 64 ? ~u64{0} : (u64{1} << eta) - 1;
    RnsPoly out(ctx.ntt_context());
    for (std::size_t k = 0; k < ctx.degree(); ++k) {
        const int a = std::popcount(rng.Next() & mask);
        const int b = std::popcount(rng.Next() & mask);
        SetSignedCoefficient(out, k, a - b);
    }
    return out;
}

RnsPoly
SampleError(const HeContext &ctx, Xoshiro256 &rng)
{
    return SampleErrorAt(ctx.ntt_context(), ctx.params().noise_stddev,
                         rng);
}

}  // namespace hentt::he
