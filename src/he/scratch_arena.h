/**
 * @file
 * ScratchArena — per-scheme scratch storage for the batched HE kernels.
 *
 * BatchRelinearize and the fused BatchRelinModSwitch need transient
 * digit polynomials, gadget accumulators, and flat task arrays on every
 * call. Allocating them per op kept the kernels out of the
 * zero-steady-state-allocation club that RnsPoly multiply joined in
 * PR 1; this arena hoists the buffers to HeContext scope so the first
 * call at a given batch shape pays the allocations once and every
 * subsequent call reuses them (matching levels of the modulus chain
 * reuse for free; lower levels fit inside higher-level capacity).
 *
 * Concurrency contract: the arena is per-context working memory, so at
 * most one batched HE op may use it at a time. The contract is
 * *enforced*, not just documented: every arena-backed kernel opens an
 * OpScope, which holds the arena mutex for the duration of the op —
 * concurrent Relinearize calls on one shared context serialise against
 * each other instead of corrupting each other's scratch (each op still
 * parallelises internally through the global pool).
 */

#ifndef HENTT_HE_SCRATCH_ARENA_H
#define HENTT_HE_SCRATCH_ARENA_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/status.h"
#include "poly/rns_poly.h"

namespace hentt::he {

/** Reusable scratch buffers for one HeContext (see file comment). */
class ScratchArena
{
  public:
    /**
     * RAII scope of one arena-backed op: takes the arena mutex (so
     * concurrent ops on one context serialise rather than race) and
     * rewinds the polynomial cursor so NextPoly hands out the pooled
     * polynomials again. All storage (polynomial buffers and
     * task-array capacity) is retained across ops — that retention is
     * the whole point. Keep the scope alive for as long as any
     * NextPoly/Buffer result is in use.
     */
    class HENTT_SCOPED_CAPABILITY OpScope
    {
      public:
        // The body is hand-audited instead of analyzed: the canary
        // check can throw, and the catch-unlock-rethrow that keeps the
        // mutex balanced on that path confuses the (exception-blind)
        // thread-safety analysis. The interface annotations still hold
        // for callers.
        explicit OpScope(ScratchArena &arena)
            HENTT_ACQUIRE(arena.mutex_) HENTT_NO_THREAD_SAFETY_ANALYSIS
            : arena_(arena)
        {
            arena_.mutex_.lock();
            try {
                arena_.CheckCanaries();
                arena_.polys_used_ = 0;
            } catch (...) {
                arena_.mutex_.unlock();
                throw;
            }
        }
        ~OpScope() HENTT_RELEASE() { arena_.mutex_.unlock(); }

        OpScope(const OpScope &) = delete;
        OpScope &operator=(const OpScope &) = delete;

      private:
        ScratchArena &arena_;
    };

    /**
     * The next pooled scratch polynomial, rebound to @p level. With
     * @p zero false the rows contain stale values and the caller must
     * overwrite every element (see RnsPoly::ResetScratch). References
     * stay valid until the arena is destroyed (deque storage), but the
     * *contents* only until the next OpScope opens.
     */
    RnsPoly &
    NextPoly(const std::shared_ptr<const RnsNttContext> &level, bool zero)
        HENTT_REQUIRES(mutex_)
    {
        HENTT_FAILPOINT(fp::kArenaAlloc);
        const std::size_t budget =
            poly_budget_.load(std::memory_order_relaxed);
        if (budget != 0 && polys_used_ >= budget) {
            ThrowStatus(
                Status(ErrorCode::kResourceExhausted,
                       "scratch arena poly budget exhausted (" +
                           std::to_string(budget) + " polys)")
                    .WithFrame("ScratchArena::NextPoly"));
        }
        if (polys_used_ == polys_.size()) {
            polys_.emplace_back(level);  // grows only on first use
            if (zero) {
                ++polys_used_;
                return polys_.back();  // freshly zeroed by construction
            }
        }
        RnsPoly &poly = polys_[polys_used_++];
        poly.ResetScratch(level, zero);
        return poly;
    }

    /**
     * Cap the number of scratch polynomials one op may draw; NextPoly
     * past the cap throws kResourceExhausted. 0 (the default) means
     * unlimited. A test/containment knob — production leaves it at 0 —
     * that makes "allocation failure mid-op" a deterministic, repeatable
     * event instead of an OOM lottery. Atomic (not arena-mutex-guarded)
     * so a test harness can set it without entering an OpScope.
     */
    void SetPolyBudget(std::size_t budget)
    {
        poly_budget_.store(budget, std::memory_order_relaxed);
    }
    std::size_t PolyBudget() const
    {
        return poly_budget_.load(std::memory_order_relaxed);
    }

    /** Pooled polynomials currently handed out in this op scope. */
    std::size_t PolysUsed() const HENTT_REQUIRES(mutex_)
    {
        return polys_used_;
    }

    /**
     * A reusable task array of POD-ish type @p T, keyed by type. The
     * vector keeps its capacity across ops; callers clear() and refill
     * (steady state: zero allocations). Two *concurrent* uses of the
     * same T within one op would clobber each other — the kernels give
     * every simultaneously-live task list its own struct type.
     */
    /** The arena capability, for REQUIRES annotations on helper
     *  functions whose caller holds the OpScope. */
    Mutex &mutex() HENTT_RETURN_CAPABILITY(mutex_) { return mutex_; }

    template <typename T>
    std::vector<T> &
    Buffer() HENTT_REQUIRES(mutex_)
    {
        auto &slot = buffers_[std::type_index(typeid(T))];
        if (!slot) {
            slot = std::make_unique<Holder<T>>();
        }
        return static_cast<Holder<T> *>(slot.get())->items;
    }

  private:
    struct HolderBase {
        virtual ~HolderBase() = default;
    };
    template <typename T>
    struct Holder final : HolderBase {
        std::vector<T> items;
    };

    /**
     * Verify the guard words of every pooled polynomial, called with
     * mutex_ held at each OpScope open. A smashed canary means the
     * previous op wrote past the end of a scratch buffer; the arena
     * re-plants the guards (so subsequent ops start from a clean
     * invariant) and reports the corruption as kInternal — at the op
     * boundary, not as silently wrong ciphertexts N ops later.
     */
    void CheckCanaries() HENTT_REQUIRES(mutex_)
    {
        std::size_t smashed = 0;
        for (RnsPoly &poly : polys_) {
            if (!poly.ScratchCanaryIntact()) {
                ++smashed;
                poly.PlantScratchCanary();
            }
        }
        if (smashed != 0) {
            ThrowStatus(
                Status(ErrorCode::kInternal,
                       "scratch overflow: " + std::to_string(smashed) +
                           " smashed canar" +
                           (smashed == 1 ? "y" : "ies") +
                           " from a previous op")
                    .WithFrame("ScratchArena::OpScope"));
        }
    }

    // Serialises arena-backed ops on one context (held by OpScope).
    Mutex mutex_;
    // Deque: NextPoly references must survive later growth.
    std::deque<RnsPoly> polys_ HENTT_GUARDED_BY(mutex_);
    std::size_t polys_used_ HENTT_GUARDED_BY(mutex_) = 0;
    std::atomic<std::size_t> poly_budget_{0};  // 0 = unlimited
    std::unordered_map<std::type_index, std::unique_ptr<HolderBase>>
        buffers_ HENTT_GUARDED_BY(mutex_);
};

}  // namespace hentt::he

#endif  // HENTT_HE_SCRATCH_ARENA_H
