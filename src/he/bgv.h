/**
 * @file
 * A leveled, symmetric-key BGV-style HE scheme over the RNS polynomial
 * ring — the application substrate whose inner loop is the paper's NTT
 * batch.
 *
 * Encryption invariant: c0 + c1 * s = m + t * e (mod Q), with m the
 * plaintext (coefficients < t), e small. Homomorphic multiply tensors
 * two ciphertexts into degree 2 and relinearizes back using the CRT
 * gadget: x = sum_j [x * (Q/q_j)^{-1}]_{q_j} * (Q/q_j) (mod Q), whose
 * word-sized digits keep key-switching noise one-prime bounded.
 */

#ifndef HENTT_HE_BGV_H
#define HENTT_HE_BGV_H

#include <memory>
#include <vector>

#include "common/status.h"
#include "he/params.h"
#include "he/sampling.h"

namespace hentt::he {

/** Plaintext: coefficient vector modulo t. */
using Plaintext = std::vector<u64>;

/** Secret key s (ternary), kept in evaluation domain for fast products. */
struct SecretKey {
    RnsPoly s;
};

/**
 * Relinearization (key-switching) key material.
 *
 * Two properties distinguish this from the textbook formulation:
 *
 *  - **Evaluation domain.** Key parts are NTT-transformed once at
 *    keygen, so Relinearize pays no per-op key transforms: the only
 *    forward NTTs in the op are the np digit lifts (np^2 row
 *    transforms instead of 4*np^2), and the gadget inner product
 *    accumulates in the evaluation domain with a single inverse pair
 *    at the end.
 *  - **Per level.** One key set per level of the modulus chain, because
 *    the gadget (Q_L / q_j) depends on the level's modulus Q_L; a
 *    ciphertext that has been modulus-switched down relinearizes
 *    against its own level's keys.
 */
struct RelinKey {
    /** Keys for one level: one (b_j, a_j) pair per RNS digit of that
     *  level, both in the evaluation domain. */
    struct LevelKeys {
        std::vector<RnsPoly> b;  ///< -(a_j s) + t e_j + (Q_L/q_j) s^2
        std::vector<RnsPoly> a;  ///< uniform mask
    };

    /** levels[L-1] serves ciphertexts with L primes remaining. */
    std::vector<LevelKeys> levels;

    /** Key set for a ciphertext with @p prime_count primes remaining.
     *  @throws std::out_of_range when no such level was generated. */
    const LevelKeys &at_level(std::size_t prime_count) const
    {
        return levels.at(prime_count - 1);
    }
};

/** Ciphertext: degree-1 (c0, c1) or degree-2 (c0, c1, c2) element
 *  vector, coefficient domain. */
struct Ciphertext {
    std::vector<RnsPoly> parts;

    std::size_t degree() const { return parts.size() - 1; }
};

/** The scheme. All polynomial products run through the NTT engines. */
class BgvScheme
{
  public:
    BgvScheme(std::shared_ptr<const HeContext> ctx, u64 seed = 1);

    const HeContext &context() const { return *ctx_; }

    SecretKey KeyGen();

    /**
     * Generate relinearization keys for every level of the modulus
     * chain, stored in the evaluation domain (see RelinKey). Keygen
     * pays the transforms once so every Relinearize afterwards pays
     * none.
     */
    RelinKey MakeRelinKey(const SecretKey &sk);

    Ciphertext Encrypt(const SecretKey &sk, const Plaintext &m);
    Plaintext Decrypt(const SecretKey &sk, const Ciphertext &ct) const;

    Ciphertext Add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext Sub(const Ciphertext &a, const Ciphertext &b) const;
    /** Multiply by a plaintext polynomial. */
    Ciphertext MulPlain(const Ciphertext &ct, const Plaintext &m) const;

    /**
     * Tensor product; result has degree 2 (relinearize to shrink).
     * Executes through the batched kernel layer (ciphertext_batch.h):
     * one lazy forward-NTT dispatch across all four input parts x
     * limbs, one tensor stage, one inverse dispatch across the three
     * result parts.
     */
    Ciphertext Mul(const Ciphertext &a, const Ciphertext &b) const;

    /**
     * Key-switch a degree-2 ciphertext back to degree 1 using the
     * evaluation-domain keys of the ciphertext's current level. The
     * only forward NTTs are the digit lifts (np^2 row transforms; see
     * RelinKey).
     */
    Ciphertext Relinearize(const Ciphertext &ct,
                           const RelinKey &rk) const;

    /**
     * Fused Relinearize→ModSwitch: key-switch a degree-2 ciphertext
     * back to degree 1 *and* drop the last prime of its level in one
     * pipeline stage, bit-identical to Relinearize followed by
     * ModSwitch but with the rescale folded into the relinearization
     * inverse dispatch (see BatchRelinModSwitch). The common
     * multiply-and-descend step of a leveled circuit.
     *
     * @pre degree 2, coefficient domain, at least two primes remaining.
     */
    Ciphertext RelinModSwitch(const Ciphertext &ct,
                              const RelinKey &rk) const;

    /**
     * Modulus switching: drop the last prime of the ciphertext's level,
     * scaling the ciphertext (and its noise) down by ~q_k while
     * preserving the plaintext. This is BGV's noise-management step
     * between multiplications; the ciphertext moves one level down the
     * chain built by HeContext::level_context.
     *
     * @pre coefficient domain, at least two primes remaining.
     */
    Ciphertext ModSwitch(const Ciphertext &ct) const;

    /**
     * Non-throwing variants of the homomorphic ops: same math, but a
     * failure (bad operand shape, level mismatch, injected fault, ...)
     * comes back as a Result carrying the error Status with the op
     * name as its outermost provenance frame, instead of an exception.
     * These are the entry points a long-lived server loop calls — one
     * malformed request must not unwind the serving thread.
     */
    [[nodiscard]] Result<Ciphertext> TryAdd(const Ciphertext &a,
                                            const Ciphertext &b) const;
    [[nodiscard]] Result<Ciphertext> TrySub(const Ciphertext &a,
                                            const Ciphertext &b) const;
    [[nodiscard]] Result<Ciphertext> TryMul(const Ciphertext &a,
                                            const Ciphertext &b) const;
    [[nodiscard]] Result<Ciphertext>
    TryRelinearize(const Ciphertext &ct, const RelinKey &rk) const;
    [[nodiscard]] Result<Ciphertext>
    TryRelinModSwitch(const Ciphertext &ct, const RelinKey &rk) const;
    [[nodiscard]] Result<Ciphertext>
    TryModSwitch(const Ciphertext &ct) const;

    /** Current level (RNS primes remaining) of a ciphertext. */
    static std::size_t Level(const Ciphertext &ct)
    {
        return ct.parts.at(0).prime_count();
    }

    /**
     * Remaining noise budget in bits: log2(Q) - log2(2 * t * |e|_inf),
     * measured with the secret key. Zero means decryption is about to
     * fail.
     */
    double NoiseBudgetBits(const SecretKey &sk,
                           const Ciphertext &ct) const;

  private:
    /** m + t*e style payload: lift plaintext into R_Q at a level. */
    RnsPoly EncodePlain(const Plaintext &m,
                        std::shared_ptr<const RnsNttContext> level) const;
    /** The secret key restricted to a lower level (prefix residues). */
    RnsPoly KeyAtLevel(const SecretKey &sk,
                       std::shared_ptr<const RnsNttContext> level) const;
    /** c0 + c1 s (+ c2 s^2) in coefficient domain, at the ct's level. */
    RnsPoly InnerProduct(const SecretKey &sk, const Ciphertext &ct) const;

    std::shared_ptr<const HeContext> ctx_;
    Xoshiro256 rng_;
};

}  // namespace hentt::he

#endif  // HENTT_HE_BGV_H
