/**
 * @file
 * Parameters for the RNS-BGV-style HE layer.
 *
 * The HE layer exists to exercise the paper's workload in context: a
 * ciphertext is a pair of polynomials in Z_Q[X]/(X^N + 1) held in RNS
 * form, and every homomorphic multiplication triggers batches of
 * N-point NTTs across the np primes — the exact kernel the paper
 * accelerates (its intro: NTT/iNTT is 34-50% of ciphertext
 * multiplication).
 *
 * This is a pedagogically complete leveled scheme (keygen, symmetric
 * encryption, add, multiply, CRT-digit relinearization, noise-budget
 * accounting), not a hardened implementation: no IND-CPA-grade RNG, no
 * constant-time guarantees, no security-level estimation.
 *
 * Context layering (the serving-layer refactor): the immutable,
 * parameter-derived engine state — modulus-chain NTT contexts and the
 * per-level gadget tables — lives in HeEngineState, cached process-wide
 * so many sessions with identical parameters share one copy of the
 * twiddle tables and prefix bases. HeContext is a thin per-caller view:
 * one shared engine state plus one ScratchArena (working memory). A
 * daemon worker hands every session the same engine state and lends its
 * own arena, so ciphertexts from different sessions are mutually
 * compatible (shared RnsNttContext instances) and kernel scratch is
 * per-worker, not per-session.
 */

#ifndef HENTT_HE_PARAMS_H
#define HENTT_HE_PARAMS_H

#include <cstddef>
#include <memory>

#include "he/scratch_arena.h"
#include "poly/rns_poly.h"

namespace hentt::he {

/** User-chosen parameters. */
struct HeParams {
    std::size_t degree = 4096;      ///< ring degree N (power of two)
    std::size_t prime_count = 4;    ///< RNS primes np
    unsigned prime_bits = 60;       ///< bits per RNS prime
    u64 plain_modulus = 65537;      ///< plaintext modulus t
    double noise_stddev = 3.2;      ///< Gaussian error sigma

    /** Throws std::invalid_argument when inconsistent. */
    void Validate() const;
};

/**
 * Immutable engine state derived from one HeParams: the full-basis NTT
 * context, one reduced context per level of the modulus chain, and the
 * per-level gadget tables. Everything here is read-only after
 * construction and safe to share across threads and sessions; prefer
 * Acquire() over direct construction so identical parameter sets share
 * one instance (the twiddle tables are the dominant cost — the same
 * sharing argument as NttEngineRegistry, one layer up).
 */
class HeEngineState
{
  public:
    /** Direct construction (uncached). Validates @p params. */
    explicit HeEngineState(const HeParams &params);

    /**
     * The process-wide cached state for @p params, built on first
     * request. The cache holds weak references, so a state lives
     * exactly as long as some context uses it; construction runs
     * outside the cache lock so a slow build never stalls unrelated
     * lookups (same discipline as NttEngineRegistry::Acquire).
     */
    static std::shared_ptr<const HeEngineState>
    Acquire(const HeParams &params);

    const HeParams &params() const { return params_; }
    const RnsBasis &basis() const { return ntt_ctx_->basis(); }
    std::shared_ptr<const RnsNttContext> ntt_context() const
    {
        return ntt_ctx_;
    }

    /** Context for the first @p prime_count primes of the basis (see
     *  HeContext::level_context). */
    std::shared_ptr<const RnsNttContext>
    level_context(std::size_t prime_count) const;

    /** Per-level gadget table (see HeContext::q_hat_level). */
    u64 q_hat_level(std::size_t level, std::size_t j, std::size_t k) const
    {
        return q_hat_levels_[level - 1][j * level + k];
    }

  private:
    HeParams params_;
    std::shared_ptr<const RnsNttContext> ntt_ctx_;
    // levels_[i] serves prime_count = i + 1; levels_.back() == ntt_ctx_.
    std::vector<std::shared_ptr<const RnsNttContext>> levels_;
    // q_hat_levels_[L-1] is the L x L row-major table
    // [j][k] = (Q_L / q_j) mod q_k.
    std::vector<std::vector<u64>> q_hat_levels_;
};

/**
 * Per-caller view over shared engine state: keys and ciphertexts hold a
 * context, ops read the tables through it, and the batched kernels draw
 * scratch from its arena. Copying a context is cheap (two shared_ptrs)
 * and copies share both the engine state and the arena.
 */
class HeContext
{
  public:
    /** Standalone context: cached engine state + a private arena. */
    explicit HeContext(const HeParams &params);

    /**
     * Layered context: an explicit engine state plus an optional
     * borrowed arena (pass the worker's arena so every session on that
     * worker reuses one set of kernel scratch buffers; nullptr gets a
     * private arena). The serving layer's constructor.
     */
    explicit HeContext(std::shared_ptr<const HeEngineState> state,
                       std::shared_ptr<ScratchArena> arena = nullptr);

    const HeParams &params() const { return state_->params(); }
    std::size_t degree() const { return state_->params().degree; }
    const RnsBasis &basis() const { return state_->basis(); }
    std::shared_ptr<const RnsNttContext> ntt_context() const
    {
        return state_->ntt_context();
    }

    /** The shared immutable engine state this context layers over. */
    const std::shared_ptr<const HeEngineState> &engine_state() const
    {
        return state_;
    }

    /**
     * Context for a reduced level of the modulus chain: the first
     * @p prime_count primes of the basis. Level 0 (= the full basis) is
     * ntt_context(); modulus switching moves ciphertexts down the chain.
     */
    std::shared_ptr<const RnsNttContext>
    level_context(std::size_t prime_count) const
    {
        return state_->level_context(prime_count);
    }

    /** Q/q_j mod q_k table used by relinearization (gadget vector),
     *  at the top level of the modulus chain. */
    u64 q_hat(std::size_t j, std::size_t k) const
    {
        return state_->q_hat_level(state_->params().prime_count, j, k);
    }

    /**
     * Per-level gadget table: (Q_L / q_j) mod q_k where Q_L is the
     * product of the first @p level primes. Relinearization of a
     * ciphertext that has been modulus-switched down the chain
     * decomposes against this level's gadget, so key-switching keys
     * exist for every level (see RelinKey).
     *
     * @param level primes remaining (1 <= level <= prime_count)
     * @param j     digit index (j < level)
     * @param k     residue row (k < level)
     */
    u64 q_hat_level(std::size_t level, std::size_t j, std::size_t k) const
    {
        return state_->q_hat_level(level, j, k);
    }

    /**
     * The scratch arena backing the batched HE kernels'
     * digit/accumulator/task buffers (steady-state zero-allocation
     * Relinearize and RelinModSwitch). Working memory, not context
     * state — hence usable through the shared const context. Arena-
     * backed ops on one arena serialise against each other through
     * the arena's own mutex (ScratchArena::OpScope), so concurrent
     * callers stay correct; each op still parallelises internally
     * through the global pool.
     */
    ScratchArena &scratch() const { return *scratch_; }

    /** Shared handle to the arena, for lending it to other contexts. */
    const std::shared_ptr<ScratchArena> &scratch_arena() const
    {
        return scratch_;
    }

  private:
    std::shared_ptr<const HeEngineState> state_;
    std::shared_ptr<ScratchArena> scratch_;
};

}  // namespace hentt::he

#endif  // HENTT_HE_PARAMS_H
