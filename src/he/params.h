/**
 * @file
 * Parameters for the RNS-BGV-style HE layer.
 *
 * The HE layer exists to exercise the paper's workload in context: a
 * ciphertext is a pair of polynomials in Z_Q[X]/(X^N + 1) held in RNS
 * form, and every homomorphic multiplication triggers batches of
 * N-point NTTs across the np primes — the exact kernel the paper
 * accelerates (its intro: NTT/iNTT is 34-50% of ciphertext
 * multiplication).
 *
 * This is a pedagogically complete leveled scheme (keygen, symmetric
 * encryption, add, multiply, CRT-digit relinearization, noise-budget
 * accounting), not a hardened implementation: no IND-CPA-grade RNG, no
 * constant-time guarantees, no security-level estimation.
 */

#ifndef HENTT_HE_PARAMS_H
#define HENTT_HE_PARAMS_H

#include <cstddef>
#include <memory>

#include "he/scratch_arena.h"
#include "poly/rns_poly.h"

namespace hentt::he {

/** User-chosen parameters. */
struct HeParams {
    std::size_t degree = 4096;      ///< ring degree N (power of two)
    std::size_t prime_count = 4;    ///< RNS primes np
    unsigned prime_bits = 60;       ///< bits per RNS prime
    u64 plain_modulus = 65537;      ///< plaintext modulus t
    double noise_stddev = 3.2;      ///< Gaussian error sigma

    /** Throws std::invalid_argument when inconsistent. */
    void Validate() const;
};

/** Precomputed context shared by keys and ciphertexts. */
class HeContext
{
  public:
    explicit HeContext(const HeParams &params);

    const HeParams &params() const { return params_; }
    std::size_t degree() const { return params_.degree; }
    const RnsBasis &basis() const { return ntt_ctx_->basis(); }
    std::shared_ptr<const RnsNttContext> ntt_context() const
    {
        return ntt_ctx_;
    }

    /**
     * Context for a reduced level of the modulus chain: the first
     * @p prime_count primes of the basis. Level 0 (= the full basis) is
     * ntt_context(); modulus switching moves ciphertexts down the chain.
     */
    std::shared_ptr<const RnsNttContext>
    level_context(std::size_t prime_count) const;

    /** Q/q_j mod q_k table used by relinearization (gadget vector),
     *  at the top level of the modulus chain. */
    u64 q_hat(std::size_t j, std::size_t k) const
    {
        return q_hat_level(params_.prime_count, j, k);
    }

    /**
     * Per-level gadget table: (Q_L / q_j) mod q_k where Q_L is the
     * product of the first @p level primes. Relinearization of a
     * ciphertext that has been modulus-switched down the chain
     * decomposes against this level's gadget, so key-switching keys
     * exist for every level (see RelinKey).
     *
     * @param level primes remaining (1 <= level <= prime_count)
     * @param j     digit index (j < level)
     * @param k     residue row (k < level)
     */
    u64 q_hat_level(std::size_t level, std::size_t j, std::size_t k) const
    {
        return q_hat_levels_[level - 1][j * level + k];
    }

    /**
     * The per-scheme scratch arena backing the batched HE kernels'
     * digit/accumulator/task buffers (steady-state zero-allocation
     * Relinearize and RelinModSwitch). Working memory, not context
     * state — hence usable through the shared const context. Arena-
     * backed ops on one context serialise against each other through
     * the arena's own mutex (ScratchArena::OpScope), so concurrent
     * callers stay correct; each op still parallelises internally
     * through the global pool.
     */
    ScratchArena &scratch() const { return scratch_; }

  private:
    HeParams params_;
    mutable ScratchArena scratch_;
    std::shared_ptr<const RnsNttContext> ntt_ctx_;
    // levels_[i] serves prime_count = i + 1; levels_.back() == ntt_ctx_.
    std::vector<std::shared_ptr<const RnsNttContext>> levels_;
    // q_hat_levels_[L-1] is the L x L row-major table
    // [j][k] = (Q_L / q_j) mod q_k.
    std::vector<std::vector<u64>> q_hat_levels_;
};

}  // namespace hentt::he

#endif  // HENTT_HE_PARAMS_H
