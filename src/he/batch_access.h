/**
 * @file
 * The one sanctioned path to RnsPoly::OverrideDomain.
 *
 * Two modules legitimately relabel a polynomial's domain without going
 * through the transforms: the batched HE kernels (ciphertext_batch
 * fills rows through external dispatches and relabels the result) and
 * the serving layer's deserializer (serve/serde reconstructs
 * evaluation-domain relin keys from the wire). Both reach
 * OverrideDomain through this struct, which rns_poly.h befriends —
 * every other caller must transform.
 */

#ifndef HENTT_HE_BATCH_ACCESS_H
#define HENTT_HE_BATCH_ACCESS_H

#include "poly/rns_poly.h"

namespace hentt::he::detail {

/** Relabels a polynomial's domain tag (see file comment). */
struct RnsPolyBatchAccess {
    static void
    MarkEvaluation(RnsPoly &poly, bool lazy = false)
    {
        poly.OverrideDomain(RnsPoly::Domain::kEvaluation, lazy);
    }

    static void
    MarkCoefficient(RnsPoly &poly)
    {
        poly.OverrideDomain(RnsPoly::Domain::kCoefficient);
    }
};

}  // namespace hentt::he::detail

#endif  // HENTT_HE_BATCH_ACCESS_H
