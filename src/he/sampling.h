/**
 * @file
 * Ring-element samplers for the HE layer: uniform elements of R_Q,
 * ternary secrets, and discrete-Gaussian-ish errors (rounded Gaussian).
 */

#ifndef HENTT_HE_SAMPLING_H
#define HENTT_HE_SAMPLING_H

#include "common/random.h"
#include "he/params.h"

namespace hentt::he {

/** Uniform element of R_Q (independent uniform residues == uniform by
 *  CRT). Coefficient domain. */
RnsPoly SampleUniform(const HeContext &ctx, Xoshiro256 &rng);

/** Uniform element of R_{Q_L} at an explicit level of the modulus
 *  chain (per-level key material). Coefficient domain. */
RnsPoly SampleUniformAt(std::shared_ptr<const RnsNttContext> level,
                        Xoshiro256 &rng);

/** Ternary polynomial with coefficients in {-1, 0, 1}. */
RnsPoly SampleTernary(const HeContext &ctx, Xoshiro256 &rng);

/** Rounded-Gaussian error polynomial (sigma from the params). */
RnsPoly SampleError(const HeContext &ctx, Xoshiro256 &rng);

/** Rounded-Gaussian error polynomial at an explicit level of the
 *  modulus chain. Coefficient domain. */
RnsPoly SampleErrorAt(std::shared_ptr<const RnsNttContext> level,
                      double sigma, Xoshiro256 &rng);

/**
 * Centered-binomial error polynomial: each coefficient is
 * popcount(eta random bits) - popcount(eta random bits), giving support
 * [-eta, eta], mean 0, and variance eta/2 — the constant-time sampler
 * lattice schemes use when rejection-free error generation matters.
 * Coefficient domain. Requires 1 <= eta <= 64.
 */
RnsPoly SampleCbd(const HeContext &ctx, unsigned eta, Xoshiro256 &rng);

/** Encode a signed value into every RNS row of coefficient k. */
void SetSignedCoefficient(RnsPoly &poly, std::size_t k, long long value);

}  // namespace hentt::he

#endif  // HENTT_HE_SAMPLING_H
