#include "ntt/ntt_radix2.h"

#include <stdexcept>

#include "common/modarith.h"

namespace hentt {

namespace {

void
CheckSize(std::span<u64> a, const TwiddleTable &table)
{
    if (a.size() != table.size()) {
        throw std::invalid_argument("span size != twiddle table size");
    }
}

/** Generic forward pass parameterized on the twiddle multiply. */
template <typename MulW>
void
ForwardPass(std::span<u64> a, const TwiddleTable &table, MulW mul_w)
{
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    std::size_t t = n / 2;
    for (std::size_t m = 1; m < n; m <<= 1) {
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t w_idx = m + j;
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                const u64 u = a[k];
                const u64 v = mul_w(a[k + t], w_idx);
                a[k] = AddMod(u, v, p);
                a[k + t] = SubMod(u, v, p);
            }
        }
        t >>= 1;
    }
}

}  // namespace

void
NttRadix2(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const u64 p = table.modulus();
    ForwardPass(a, table, [&](u64 x, std::size_t i) {
        return MulModShoup(x, table.w(i), table.w_shoup(i), p);
    });
}

void
NttRadix2Native(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const u64 p = table.modulus();
    ForwardPass(a, table, [&](u64 x, std::size_t i) {
        return MulModNative(x, table.w(i), p);
    });
}

void
NttRadix2Barrett(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const BarrettReducer barrett(table.modulus());
    ForwardPass(a, table, [&](u64 x, std::size_t i) {
        return barrett.MulMod(x, table.w(i));
    });
}

void
InttRadix2(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    // Gentleman-Sande: butterflies consume (u, v) and emit
    // (u + v, (u - v) * w) with w drawn from the inverse table.
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        const std::size_t h = m / 2;
        for (std::size_t j = 0; j < h; ++j) {
            const std::size_t w_idx = h + j;
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                const u64 u = a[k];
                const u64 v = a[k + t];
                a[k] = AddMod(u, v, p);
                a[k + t] = MulModShoup(SubMod(u, v, p), table.w_inv(w_idx),
                                       table.w_inv_shoup(w_idx), p);
            }
        }
        t <<= 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = MulModShoup(a[i], table.n_inv(), table.n_inv_shoup(), p);
    }
}

}  // namespace hentt
