/**
 * @file
 * In-place radix-2 negacyclic NTT/iNTT (paper Algo. 1 + its inverse).
 *
 * Forward: Cooley-Tukey decimation-in-time with merged psi powers,
 * natural-order input, bit-reversed output. Inverse: Gentleman-Sande
 * decimation-in-frequency, bit-reversed input, natural-order output,
 * with the N^{-1} scaling folded into the final pass. The composition
 * InttRadix2(NttRadix2(a)) == a without any explicit bit-reversal, which
 * is exactly why the paper picks Cooley-Tukey over Stockham for HE
 * (Section IV, "Cooley-Tukey vs. Stockham").
 *
 * All twiddle multiplications use Shoup's modmul; a native-modulo variant
 * is provided for the Fig. 1 comparison.
 */

#ifndef HENTT_NTT_NTT_RADIX2_H
#define HENTT_NTT_NTT_RADIX2_H

#include <span>

#include "ntt/twiddle_table.h"

namespace hentt {

/**
 * Forward negacyclic NTT, in place.
 *
 * @param a       coefficients, natural order, values < p; on return the
 *                transform in bit-reversed order
 * @param table   twiddle table for (a.size(), p)
 */
void NttRadix2(std::span<u64> a, const TwiddleTable &table);

/**
 * Inverse negacyclic NTT, in place: bit-reversed input, natural-order
 * output, including the N^{-1} scaling.
 */
void InttRadix2(std::span<u64> a, const TwiddleTable &table);

/** Forward NTT using the native `%` reduction instead of Shoup's modmul
 *  (the Fig. 1 "Native" configuration). Identical output. */
void NttRadix2Native(std::span<u64> a, const TwiddleTable &table);

/**
 * Forward NTT with Barrett reduction for the twiddle multiplies
 * (ablation; paper Section IV mentions Barrett as the other standard
 * fast-reduction choice). Identical output.
 */
void NttRadix2Barrett(std::span<u64> a, const TwiddleTable &table);

}  // namespace hentt

#endif  // HENTT_NTT_NTT_RADIX2_H
