#include "ntt/ntt_naive.h"

#include "common/modarith.h"

namespace hentt {

std::vector<u64>
NaiveNegacyclicNtt(const std::vector<u64> &a, u64 psi, u64 p)
{
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        // w_k = psi^(2k+1); accumulate a_n * w_k^n.
        const u64 wk = PowMod(psi, 2 * k + 1, p);
        u64 acc = 0;
        u64 wpow = 1;
        for (std::size_t i = 0; i < n; ++i) {
            acc = AddMod(acc, MulModNative(a[i] % p, wpow, p), p);
            wpow = MulModNative(wpow, wk, p);
        }
        out[k] = acc;
    }
    return out;
}

std::vector<u64>
NaiveNegacyclicIntt(const std::vector<u64> &x, u64 psi, u64 p)
{
    const std::size_t n = x.size();
    const u64 n_inv = InvMod(static_cast<u64>(n), p);
    const u64 psi_inv = InvMod(psi, p);
    std::vector<u64> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        // a_i = N^{-1} * psi^{-i} * sum_k X_k * psi^{-2ik}
        u64 acc = 0;
        const u64 wi = PowMod(psi_inv, 2 * i, p);
        u64 wpow = 1;
        for (std::size_t k = 0; k < n; ++k) {
            acc = AddMod(acc, MulModNative(x[k] % p, wpow, p), p);
            wpow = MulModNative(wpow, wi, p);
        }
        acc = MulModNative(acc, PowMod(psi_inv, i, p), p);
        out[i] = MulModNative(acc, n_inv, p);
    }
    return out;
}

std::vector<u64>
NaiveCyclicNtt(const std::vector<u64> &a, u64 omega, u64 p)
{
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        const u64 wk = PowMod(omega, k, p);
        u64 acc = 0;
        u64 wpow = 1;
        for (std::size_t i = 0; i < n; ++i) {
            acc = AddMod(acc, MulModNative(a[i] % p, wpow, p), p);
            wpow = MulModNative(wpow, wk, p);
        }
        out[k] = acc;
    }
    return out;
}

}  // namespace hentt
