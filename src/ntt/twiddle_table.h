/**
 * @file
 * Precomputed twiddle-factor tables for the negacyclic NTT.
 *
 * For an N-point negacyclic NTT over Z_p the merged Cooley-Tukey
 * formulation (paper Section III-A/C) uses powers of the primitive
 * 2N-th root of unity psi, stored in bit-reversed order:
 *
 *     Psi[i] = psi^{bitrev(i, log2 N)}            (forward)
 *     PsiInv[i] = psi^{-bitrev(i, log2 N)}        (inverse, GS order)
 *
 * Because every twiddle is consumed by Shoup's modmul (Algo. 4), each
 * entry carries a companion word ShoupPrecompute(w, p) — this is the
 * factor-of-two table blow-up the paper calls out, and together with the
 * np-fold RNS replication it is what makes NTT (unlike DFT) memory-bound
 * under batching.
 */

#ifndef HENTT_NTT_TWIDDLE_TABLE_H
#define HENTT_NTT_TWIDDLE_TABLE_H

#include <cstddef>
#include <vector>

#include "common/int128.h"

namespace hentt {

/** Forward + inverse twiddle tables for one (N, p) pair. */
class TwiddleTable
{
  public:
    /**
     * Build tables for an N-point negacyclic NTT mod p.
     *
     * @param n  transform size; power of two
     * @param p  prime with p == 1 (mod 2n)
     * @throws std::invalid_argument on invalid n or p.
     */
    TwiddleTable(std::size_t n, u64 p);

    std::size_t size() const { return n_; }
    u64 modulus() const { return p_; }

    /** The primitive 2N-th root of unity the tables are built from. */
    u64 psi() const { return psi_; }
    /** psi^{-1} mod p. */
    u64 psi_inv() const { return psi_inv_; }
    /** N^{-1} mod p (final iNTT scaling). */
    u64 n_inv() const { return n_inv_; }
    /** Shoup companion of N^{-1}. */
    u64 n_inv_shoup() const { return n_inv_shoup_; }

    /** Forward twiddle Psi[i] (bit-reversed power of psi). */
    u64 w(std::size_t i) const { return fwd_[i]; }
    /** Shoup companion of w(i). */
    u64 w_shoup(std::size_t i) const { return fwd_shoup_[i]; }
    /** Inverse twiddle PsiInv[i]. */
    u64 w_inv(std::size_t i) const { return inv_[i]; }
    /** Shoup companion of w_inv(i). */
    u64 w_inv_shoup(std::size_t i) const { return inv_shoup_[i]; }

    /**
     * Total precomputed bytes for the forward direction: N twiddles plus
     * N Shoup companions, 8 bytes each. This is the per-prime table
     * footprint the paper's DRAM-traffic analysis charges to NTT.
     */
    std::size_t forward_table_bytes() const { return 2 * n_ * sizeof(u64); }

    /** Raw table access for the kernel emulations. */
    const std::vector<u64> &forward_words() const { return fwd_; }
    const std::vector<u64> &forward_shoup_words() const
    {
        return fwd_shoup_;
    }
    /** Raw inverse-table access for the SIMD butterfly kernels (the
     *  tail stages stream contiguous twiddle slices). */
    const std::vector<u64> &inverse_words() const { return inv_; }
    const std::vector<u64> &inverse_shoup_words() const
    {
        return inv_shoup_;
    }

  private:
    std::size_t n_;
    u64 p_;
    u64 psi_;
    u64 psi_inv_;
    u64 n_inv_;
    u64 n_inv_shoup_;
    std::vector<u64> fwd_, fwd_shoup_;
    std::vector<u64> inv_, inv_shoup_;
};

}  // namespace hentt

#endif  // HENTT_NTT_TWIDDLE_TABLE_H
