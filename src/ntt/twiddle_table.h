/**
 * @file
 * Precomputed twiddle-factor tables for the negacyclic NTT.
 *
 * For an N-point negacyclic NTT over Z_p the merged Cooley-Tukey
 * formulation (paper Section III-A/C) uses powers of the primitive
 * 2N-th root of unity psi, stored in bit-reversed order:
 *
 *     Psi[i] = psi^{bitrev(i, log2 N)}            (forward)
 *     PsiInv[i] = psi^{-bitrev(i, log2 N)}        (inverse, GS order)
 *
 * Because every twiddle is consumed by Shoup's modmul (Algo. 4), each
 * entry carries a companion word ShoupPrecompute(w, p) — this is the
 * factor-of-two table blow-up the paper calls out, and together with the
 * np-fold RNS replication it is what makes NTT (unlike DFT) memory-bound
 * under batching.
 */

#ifndef HENTT_NTT_TWIDDLE_TABLE_H
#define HENTT_NTT_TWIDDLE_TABLE_H

#include <cstddef>
#include <vector>

#include "common/int128.h"

namespace hentt {

/** Forward + inverse twiddle tables for one (N, p) pair. */
class TwiddleTable
{
  public:
    /**
     * Build tables for an N-point negacyclic NTT mod p.
     *
     * @param n  transform size; power of two
     * @param p  prime with p == 1 (mod 2n)
     * @throws std::invalid_argument on invalid n or p.
     */
    TwiddleTable(std::size_t n, u64 p);

    // The FusedStage views below hold pointers into this object's own
    // twiddle storage; a copy's views would alias the source's heap
    // buffers (dangling once the source dies). Moves transfer the
    // buffers, so the views stay valid.
    TwiddleTable(const TwiddleTable &) = delete;
    TwiddleTable &operator=(const TwiddleTable &) = delete;
    TwiddleTable(TwiddleTable &&) = default;
    TwiddleTable &operator=(TwiddleTable &&) = default;

    std::size_t size() const { return n_; }
    u64 modulus() const { return p_; }

    /** The primitive 2N-th root of unity the tables are built from. */
    u64 psi() const { return psi_; }
    /** psi^{-1} mod p. */
    u64 psi_inv() const { return psi_inv_; }
    /** N^{-1} mod p (final iNTT scaling). */
    u64 n_inv() const { return n_inv_; }
    /** Shoup companion of N^{-1}. */
    u64 n_inv_shoup() const { return n_inv_shoup_; }

    /** Forward twiddle Psi[i] (bit-reversed power of psi). */
    u64 w(std::size_t i) const { return fwd_[i]; }
    /** Shoup companion of w(i). */
    u64 w_shoup(std::size_t i) const { return fwd_shoup_[i]; }
    /** Inverse twiddle PsiInv[i]. */
    u64 w_inv(std::size_t i) const { return inv_[i]; }
    /** Shoup companion of w_inv(i). */
    u64 w_inv_shoup(std::size_t i) const { return inv_shoup_[i]; }

    /**
     * Total precomputed bytes for the forward direction: N twiddles plus
     * N Shoup companions, 8 bytes each. This is the per-prime table
     * footprint the paper's DRAM-traffic analysis charges to NTT.
     */
    std::size_t forward_table_bytes() const { return 2 * n_ * sizeof(u64); }

    /** Raw table access for the kernel emulations. */
    const std::vector<u64> &forward_words() const { return fwd_; }
    const std::vector<u64> &forward_shoup_words() const
    {
        return fwd_shoup_;
    }
    /** Raw inverse-table access for the SIMD butterfly kernels (the
     *  tail stages stream contiguous twiddle slices). */
    const std::vector<u64> &inverse_words() const { return inv_; }
    const std::vector<u64> &inverse_shoup_words() const
    {
        return inv_shoup_;
    }

    /**
     * One fused radix-4 stage pair in the stage-major interleaved
     * twiddle layout: the twiddles two consecutive radix-2 levels
     * consume, re-packed so both SIMD kernel streams are strictly
     * sequential — (w, w_bar) always adjacent, and the two cross-term
     * (second butterfly level) twiddles of a super-block adjacent to
     * each other. This is what lets the tail stages (quarter < 4) run
     * on unpack shuffles instead of the split-table permute/gather
     * traffic the radix-2 walker pays.
     *
     * Forward semantics (CT): `pairs` is the shared first-level twiddle
     * of super-block j as (w, w_bar) at pairs[2j]; `quads` holds its
     * two second-level twiddles as (w2a, w2a_bar, w2b, w2b_bar) at
     * quads[4j]. Inverse semantics (GS) mirror: `quads` carries the two
     * first-level twiddles, `pairs` the shared second-level one.
     */
    struct FusedStage {
        std::size_t blocks;   ///< super-block count m
        std::size_t quarter;  ///< quarter run length q (block = 4q)
        const u64 *pairs;     ///< interleaved (w, w_bar), 2m words
        const u64 *quads;     ///< interleaved (wa, wa_bar, wb, wb_bar)
    };

    /** Fused forward stage pairs, outermost first (levels m = 1, 4,
     *  16, ...). Covers log2(N) & ~1 levels; an odd log2(N) leaves one
     *  trailing radix-2 stage (see has_radix2_tail). */
    const std::vector<FusedStage> &fused_forward_stages() const
    {
        return fwd4_stages_;
    }
    /** Fused inverse stage pairs, innermost first (t = 1, 4, 16, ...);
     *  an odd log2(N) leaves one trailing radix-2 stage at t = N/2. */
    const std::vector<FusedStage> &fused_inverse_stages() const
    {
        return inv4_stages_;
    }
    /** Whether log2(N) is odd, i.e. the fused walkers must finish with
     *  one radix-2 stage (forward: m = N/2, t = 1; inverse: h = 1,
     *  t = N/2) from the split tables. */
    bool has_radix2_tail() const { return radix2_tail_; }

  private:
    std::size_t n_;
    u64 p_;
    u64 psi_;
    u64 psi_inv_;
    u64 n_inv_;
    u64 n_inv_shoup_;
    /** Build the fused radix-4 stage views from the split tables. */
    void BuildFusedStages();

    std::vector<u64> fwd_, fwd_shoup_;
    std::vector<u64> inv_, inv_shoup_;
    // Stage-major interleaved twiddle words backing the FusedStage
    // views (pairs and quads of every fused stage, concatenated).
    std::vector<u64> fwd4_words_, inv4_words_;
    std::vector<FusedStage> fwd4_stages_, inv4_stages_;
    bool radix2_tail_ = false;
};

}  // namespace hentt

#endif  // HENTT_NTT_TWIDDLE_TABLE_H
