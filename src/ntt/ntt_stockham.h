/**
 * @file
 * Out-of-place radix-2 Stockham autosort NTT (paper Algo. 3).
 *
 * Stockham avoids the bit-reversal permutation by storing permuted
 * outputs at every stage, at the cost of ping-pong (out-of-place)
 * buffers — the working-set doubling the paper cites as the reason to
 * prefer Cooley-Tukey for HE-sized transforms. We implement it for the
 * algorithm-comparison study: the negacyclic transform is obtained by
 * pre-scaling with psi^n (the classic unmerged formulation) followed by
 * a cyclic Stockham sweep with omega = psi^2, yielding natural-order
 * output identical to the naive oracle.
 */

#ifndef HENTT_NTT_NTT_STOCKHAM_H
#define HENTT_NTT_NTT_STOCKHAM_H

#include <vector>

#include "common/int128.h"

namespace hentt {

/** Scratch-owning Stockham transformer for one (N, p) pair. */
class StockhamNtt
{
  public:
    /**
     * @param n  power-of-two transform size
     * @param p  prime with p == 1 (mod 2n)
     */
    StockhamNtt(std::size_t n, u64 p);

    std::size_t size() const { return n_; }
    u64 modulus() const { return p_; }
    /** The primitive 2N-th root the transform is built from. */
    u64 psi() const { return psi_; }

    /** Forward negacyclic NTT, natural-order input and output. */
    std::vector<u64> Forward(const std::vector<u64> &a) const;

    /** Inverse negacyclic NTT, natural-order input and output. */
    std::vector<u64> Inverse(const std::vector<u64> &x) const;

  private:
    /** Cyclic Stockham sweep with the given omega-power table. */
    void Sweep(std::vector<u64> &x, std::vector<u64> &y,
               const std::vector<u64> &omega_pow,
               const std::vector<u64> &omega_pow_shoup) const;

    std::size_t n_;
    u64 p_;
    u64 psi_;
    std::vector<u64> psi_pow_, psi_pow_shoup_;        // psi^n, n < N
    std::vector<u64> psi_inv_pow_, psi_inv_pow_shoup_;
    std::vector<u64> omega_pow_, omega_pow_shoup_;    // omega^j, j < N/2
    std::vector<u64> omega_inv_pow_, omega_inv_pow_shoup_;
    u64 n_inv_, n_inv_shoup_;
};

}  // namespace hentt

#endif  // HENTT_NTT_NTT_STOCKHAM_H
