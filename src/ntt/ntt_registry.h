/**
 * @file
 * Process-wide cache of NttEngine instances keyed by (N, p, ot_base).
 *
 * An HE modulus chain builds one RnsNttContext per level, and every
 * level's prime set is a prefix of the full basis — so without sharing,
 * the same twiddle tables (2N words plus Shoup companions per prime,
 * the paper's factor-of-two table blow-up) are recomputed and stored
 * once per level. The registry builds each engine exactly once per
 * concurrent lifetime and hands out shared ownership, which both cuts
 * context-construction cost from O(levels^2) table builds to O(levels)
 * and keeps one copy of each table hot in cache across the whole chain.
 *
 * The cache holds weak references: an engine lives exactly as long as
 * some context or workload uses it, so parameter sweeps that walk many
 * (N, p) pairs (e.g. the table-size benches) peak at their largest
 * working set, not the sum of everything ever built.
 */

#ifndef HENTT_NTT_NTT_REGISTRY_H
#define HENTT_NTT_NTT_REGISTRY_H

#include <map>
#include <memory>
#include <tuple>

#include "common/mutex.h"
#include "ntt/ntt_engine.h"

namespace hentt {

/** Thread-safe shared cache of per-(N, p) transform engines. */
class NttEngineRegistry
{
  public:
    /** The process-wide instance used by RnsNttContext and the kernel
     *  emulation workloads. */
    static NttEngineRegistry &Global();

    /**
     * Return the cached engine for (n, p, ot_base), building it on
     * first request. Construction runs outside the registry lock so a
     * slow twiddle build never stalls unrelated lookups.
     */
    std::shared_ptr<const NttEngine>
    Acquire(std::size_t n, u64 p, std::size_t ot_base = 1024)
        HENTT_EXCLUDES(mutex_);

    /** Number of distinct live engines currently cached. */
    std::size_t cached_count() const HENTT_EXCLUDES(mutex_);

    /** Drop every cache entry (outstanding shared_ptrs stay valid). */
    void Clear() HENTT_EXCLUDES(mutex_);

  private:
    using Key = std::tuple<std::size_t, u64, std::size_t>;

    mutable Mutex mutex_;
    std::map<Key, std::weak_ptr<const NttEngine>> cache_
        HENTT_GUARDED_BY(mutex_);
};

}  // namespace hentt

#endif  // HENTT_NTT_NTT_REGISTRY_H
