#include "ntt/ntt_lazy.h"

#include <stdexcept>

#include "common/modarith.h"
#include "simd/simd_backend.h"

namespace hentt {

namespace {

void
CheckSize(std::span<u64> a, const TwiddleTable &table)
{
    if (a.size() != table.size()) {
        throw std::invalid_argument("span size != twiddle table size");
    }
}

}  // namespace

void
NttRadix2LazyKeepRange(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const simd::Kernels &simd = simd::Active();
    const u64 *w = table.forward_words().data();
    const u64 *w_bar = table.forward_shoup_words().data();

    // One backend call per stage, the whole loop nest inside the
    // kernel (gather-free: contiguous-row blocks while t allows,
    // in-register shuffles for the short-run tail stages), with the
    // stage's contiguous twiddle slice w[m..2m). Dispatch cost is
    // O(log N) indirect calls per transform.
    std::size_t t = n / 2;
    for (std::size_t m = 1; m < n; m <<= 1) {
        simd.fwd_butterfly_stage(a.data(), w + m, w_bar + m, m, t, p);
        t >>= 1;
    }
}

void
NttRadix2Lazy(std::span<u64> a, const TwiddleTable &table)
{
    NttRadix2LazyKeepRange(a, table);
    // Outputs are < 4p; fold back into [0, p).
    simd::Active().fold_lazy_rows(a.data(), a.size(), table.modulus());
}

void
InttRadix2Lazy(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const simd::Kernels &simd = simd::Active();
    const u64 *w = table.inverse_words().data();
    const u64 *w_bar = table.inverse_shoup_words().data();

    // Gentleman-Sande with the invariant: all values stay < 2p
    // (simd::InvButterflyElem semantics). Short runs come first here
    // (t grows), so the shuffle tail covers the head stages.
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        const std::size_t h = m / 2;
        simd.inv_butterfly_stage(a.data(), w + h, w_bar + h, h, t, p);
        t <<= 1;
    }
    // Final N^{-1} scaling; MulModShoup fully reduces any 64-bit input.
    simd.mul_shoup_rows(a.data(), a.data(), n, table.n_inv(),
                        table.n_inv_shoup(), p);
}

}  // namespace hentt
