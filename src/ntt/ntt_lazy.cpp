#include "ntt/ntt_lazy.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/failpoint.h"
#include "common/modarith.h"
#include "common/status.h"
#include "ntt/ntt_engine.h"
#include "simd/simd_backend.h"

namespace hentt {

namespace {

// Stage-walk selection (see LazyWalk). Encoding: 0 = unresolved,
// 1 = fused radix-4, 2 = unfused radix-2. The environment is consulted
// once, on the first transform; ForceLazyWalk writes the value
// directly and ResetLazyWalk drops back to unresolved. One relaxed
// atomic load per *transform* (not per stage), so the hook costs
// nothing next to the N log N work it selects.
std::atomic<int> g_lazy_walk{0};

int
ResolveLazyWalkFromEnv()
{
    const char *env = std::getenv("HENTT_RADIX");
    if (env != nullptr && env[0] == '2' && env[1] == '\0') {
        return 2;
    }
    return 1;  // default (and any unrecognised value): fused radix-4
}

inline bool
UseUnfusedWalk()
{
    int mode = g_lazy_walk.load(std::memory_order_relaxed);
    if (mode == 0) {
        mode = ResolveLazyWalkFromEnv();
        g_lazy_walk.store(mode, std::memory_order_relaxed);
    }
    return mode == 2;
}

}  // namespace

LazyWalk
ActiveLazyWalk()
{
    return UseUnfusedWalk() ? LazyWalk::kRadix2 : LazyWalk::kFusedRadix4;
}

void
ForceLazyWalk(LazyWalk walk)
{
    g_lazy_walk.store(walk == LazyWalk::kRadix2 ? 2 : 1,
                      std::memory_order_relaxed);
}

void
ResetLazyWalk()
{
    g_lazy_walk.store(0, std::memory_order_relaxed);
}

namespace {

void
CheckSize(std::span<u64> a, const TwiddleTable &table)
{
    if (a.size() != table.size()) {
        throw std::invalid_argument("span size != twiddle table size");
    }
}

/**
 * Lazy-range guard at a stage boundary: every element must be < bound
 * (4p between forward stages, 2p inside the inverse walk). Active only
 * while the ntt.range_guard failpoint site is armed — the roll-free
 * Armed() query — so production stage walks pay nothing; the chaos
 * suite arms it to turn a silent range escape (which would corrupt
 * later Shoup/Barrett reductions) into a contained kInternal error at
 * the stage that produced it.
 */
inline void
GuardLazyRange(const u64 *a, std::size_t n, u64 bound, const char *walk,
               u64 stage)
{
    if (!fp::kCompiledIn || !fp::Armed(fp::kNttRangeGuard)) {
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] >= bound) {
            ThrowStatus(
                Status(ErrorCode::kInternal,
                       "lazy range violation: element " +
                           std::to_string(i) + " = " +
                           std::to_string(a[i]) + " >= " +
                           std::to_string(bound))
                    .WithFrame(std::string(walk) + " stage " +
                               std::to_string(stage)));
        }
    }
}

}  // namespace

void
NttRadix2LazyKeepRange(std::span<u64> a, const TwiddleTable &table)
{
    if (UseUnfusedWalk()) {
        NttRadix2LazyKeepRangeUnfused(a, table);
        return;
    }
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const simd::Kernels &simd = simd::Active();

    // Fused radix-4 stage walk: each dispatch executes TWO consecutive
    // butterfly levels while the super-block is in registers, so the
    // coefficient array is read and written ceil(log N / 2) times
    // instead of log N — the pass-count cut the paper's memory-bound
    // NTT analysis asks for. Twiddles stream from the stage-major
    // interleaved (w, w_bar) layout, so even the shuffle-tail stages
    // (quarter < 4) consume them sequentially. Outputs are
    // bit-identical to the radix-2 walk (the fused kernel is the same
    // four FwdButterflyElem applications in the same order), lazy
    // [0, 4p) representatives included.
    u64 dispatches = 0;
    for (const TwiddleTable::FusedStage &st :
         table.fused_forward_stages()) {
        HENTT_FAILPOINT(fp::kNttStage);
        simd.fwd_butterfly_stage4(a.data(), st.pairs, st.quads,
                                  st.blocks, st.quarter, p);
        ++dispatches;
        GuardLazyRange(a.data(), n, 4 * p, "NttRadix2LazyKeepRange",
                       dispatches);
    }
    if (table.has_radix2_tail()) {
        // Odd log N: one radix-2 stage remains (m = n/2, t = 1, the
        // in-register shuffle tail) from the split tables.
        HENTT_FAILPOINT(fp::kNttStage);
        const u64 *w = table.forward_words().data();
        const u64 *w_bar = table.forward_shoup_words().data();
        simd.fwd_butterfly_stage(a.data(), w + n / 2, w_bar + n / 2,
                                 n / 2, 1, p);
        ++dispatches;
        GuardLazyRange(a.data(), n, 4 * p, "NttRadix2LazyKeepRange",
                       dispatches);
    }
    AddButterflyStageDispatches(dispatches);
}

void
NttRadix2LazyKeepRangeUnfused(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const simd::Kernels &simd = simd::Active();
    const u64 *w = table.forward_words().data();
    const u64 *w_bar = table.forward_shoup_words().data();

    // Radix-2 stage walk (one backend call per butterfly level, log N
    // passes over the data) — the ablation baseline the fused radix-4
    // walker is validated and benchmarked against.
    std::size_t t = n / 2;
    u64 dispatches = 0;
    for (std::size_t m = 1; m < n; m <<= 1) {
        simd.fwd_butterfly_stage(a.data(), w + m, w_bar + m, m, t, p);
        t >>= 1;
        ++dispatches;
    }
    AddButterflyStageDispatches(dispatches);
}

void
NttRadix2Lazy(std::span<u64> a, const TwiddleTable &table)
{
    NttRadix2LazyKeepRange(a, table);
    // Outputs are < 4p; fold back into [0, p).
    simd::Active().fold_lazy_rows(a.data(), a.size(), table.modulus());
}

void
NttRadix2LazyUnfused(std::span<u64> a, const TwiddleTable &table)
{
    NttRadix2LazyKeepRangeUnfused(a, table);
    simd::Active().fold_lazy_rows(a.data(), a.size(), table.modulus());
}

void
InttRadix2Lazy(std::span<u64> a, const TwiddleTable &table)
{
    if (UseUnfusedWalk()) {
        InttRadix2LazyUnfused(a, table);
        return;
    }
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const simd::Kernels &simd = simd::Active();

    // Fused radix-4 Gentleman-Sande walk, mirror of the forward: the
    // short-run stages come first (t grows), all values stay < 2p
    // (simd::InvButterflyElem invariant), and each dispatch retires two
    // levels per pass over the data.
    u64 dispatches = 0;
    for (const TwiddleTable::FusedStage &st :
         table.fused_inverse_stages()) {
        HENTT_FAILPOINT(fp::kNttStage);
        simd.inv_butterfly_stage4(a.data(), st.quads, st.pairs,
                                  st.blocks, st.quarter, p);
        ++dispatches;
        GuardLazyRange(a.data(), n, 2 * p, "InttRadix2Lazy", dispatches);
    }
    if (table.has_radix2_tail()) {
        // Odd log N: the outermost radix-2 stage remains (h = 1,
        // t = n/2 — one contiguous-row block).
        HENTT_FAILPOINT(fp::kNttStage);
        const u64 *w = table.inverse_words().data();
        const u64 *w_bar = table.inverse_shoup_words().data();
        simd.inv_butterfly_stage(a.data(), w + 1, w_bar + 1, 1, n / 2,
                                 p);
        ++dispatches;
        GuardLazyRange(a.data(), n, 2 * p, "InttRadix2Lazy", dispatches);
    }
    AddButterflyStageDispatches(dispatches);
    // Final N^{-1} scaling; MulModShoup fully reduces any 64-bit input.
    simd.mul_shoup_rows(a.data(), a.data(), n, table.n_inv(),
                        table.n_inv_shoup(), p);
}

void
InttRadix2LazyUnfused(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const simd::Kernels &simd = simd::Active();
    const u64 *w = table.inverse_words().data();
    const u64 *w_bar = table.inverse_shoup_words().data();

    // Radix-2 Gentleman-Sande walk (ablation baseline; see
    // NttRadix2LazyKeepRangeUnfused).
    std::size_t t = 1;
    u64 dispatches = 0;
    for (std::size_t m = n; m > 1; m >>= 1) {
        const std::size_t h = m / 2;
        simd.inv_butterfly_stage(a.data(), w + h, w_bar + h, h, t, p);
        t <<= 1;
        ++dispatches;
    }
    AddButterflyStageDispatches(dispatches);
    simd.mul_shoup_rows(a.data(), a.data(), n, table.n_inv(),
                        table.n_inv_shoup(), p);
}

}  // namespace hentt
