#include "ntt/ntt_lazy.h"

#include <stdexcept>

#include "common/modarith.h"

namespace hentt {

namespace {

void
CheckSize(std::span<u64> a, const TwiddleTable &table)
{
    if (a.size() != table.size()) {
        throw std::invalid_argument("span size != twiddle table size");
    }
}

}  // namespace

void
NttRadix2LazyKeepRange(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();

    std::size_t t = n / 2;
    for (std::size_t m = 1; m < n; m <<= 1) {
        for (std::size_t j = 0; j < m; ++j) {
            const u64 w = table.w(m + j);
            const u64 w_bar = table.w_shoup(m + j);
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                LazyButterfly(a[k], a[k + t], w, w_bar, p);
            }
        }
        t >>= 1;
    }
}

void
NttRadix2Lazy(std::span<u64> a, const TwiddleTable &table)
{
    NttRadix2LazyKeepRange(a, table);
    // Outputs are < 4p; fold back into [0, p).
    const u64 p = table.modulus();
    for (u64 &x : a) {
        x = FoldLazy(x, p);
    }
}

void
InttRadix2Lazy(std::span<u64> a, const TwiddleTable &table)
{
    CheckSize(a, table);
    const std::size_t n = a.size();
    const u64 p = table.modulus();
    const u64 two_p = 2 * p;

    // Gentleman-Sande with the invariant: all values stay < 2p.
    std::size_t t = 1;
    for (std::size_t m = n; m > 1; m >>= 1) {
        const std::size_t h = m / 2;
        for (std::size_t j = 0; j < h; ++j) {
            const u64 w = table.w_inv(h + j);
            const u64 w_bar = table.w_inv_shoup(h + j);
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                const u64 u = a[k];
                const u64 v = a[k + t];
                u64 s = u + v;  // < 4p
                if (s >= two_p) {
                    s -= two_p;
                }
                a[k] = s;
                // (u - v) * w, lazy: Harvey's bound keeps it < 2p for
                // any 64-bit multiplicand.
                const u64 d = u + two_p - v;  // < 4p
                const u64 q = MulHi64(d, w_bar);
                a[k + t] = d * w - q * p;     // < 2p
            }
        }
        t <<= 1;
    }
    // Final N^{-1} scaling; MulModShoup fully reduces any 64-bit input.
    for (u64 &x : a) {
        x = MulModShoup(x, table.n_inv(), table.n_inv_shoup(), p);
    }
}

}  // namespace hentt
