#include "ntt/ntt_highradix.h"

#include <array>
#include <stdexcept>
#include <vector>

#include "common/bitops.h"
#include "common/modarith.h"

namespace hentt {

std::size_t
HighRadixPassCount(std::size_t n, std::size_t radix)
{
    const std::size_t total = Log2Exact(n);
    const std::size_t per_pass = Log2Exact(radix);
    return (total + per_pass - 1) / per_pass;
}

void
NttHighRadix(std::span<u64> a, const TwiddleTable &table, std::size_t radix)
{
    const std::size_t n = a.size();
    if (n != table.size()) {
        throw std::invalid_argument("span size != twiddle table size");
    }
    if (!IsPowerOfTwo(radix) || radix < 2 || radix > n) {
        throw std::invalid_argument("radix must be a power of two in "
                                    "[2, N]");
    }
    const u64 p = table.modulus();
    const unsigned log_n = Log2Exact(n);
    const unsigned log_r = Log2Exact(radix);

    std::vector<u64> local(radix);
    unsigned stage = 0;  // global radix-2 stage counter, m = 2^stage
    while (stage < log_n) {
        const unsigned k = std::min<unsigned>(log_r, log_n - stage);
        const std::size_t r = std::size_t{1} << k;
        // At global stage s the butterfly stride is N / 2^{s+1}; the last
        // stage in this group has the smallest stride, which is also the
        // gather stride for the closed R-element set.
        const std::size_t t_min = n >> (stage + k);
        const std::size_t groups = n / r;
        for (std::size_t g = 0; g < groups; ++g) {
            // Work item g handles elements base + i * t_min where the
            // base enumerates (block offset, intra-block position).
            const std::size_t block = g / t_min;
            const std::size_t offset = g % t_min;
            const std::size_t base = block * (r * t_min) + offset;
            for (std::size_t i = 0; i < r; ++i) {
                local[i] = a[base + i * t_min];
            }
            // Run the k radix-2 stages on the local buffer. Local stride
            // halves from r/2 down to 1; global twiddle indices are
            // recovered from the element's absolute position.
            for (unsigned s = 0; s < k; ++s) {
                const std::size_t m = std::size_t{1} << (stage + s);
                const std::size_t t = n >> (stage + s + 1);
                const std::size_t half = r >> (s + 1);  // local stride
                for (std::size_t pair = 0; pair < r / 2; ++pair) {
                    const std::size_t grp = pair / half;
                    const std::size_t pos = pair % half;
                    const std::size_t lo = grp * 2 * half + pos;
                    const std::size_t hi = lo + half;
                    // Absolute index of the low element determines the
                    // global butterfly group j = idx / (2t).
                    const std::size_t abs_lo = base + lo * t_min;
                    const std::size_t w_idx = m + abs_lo / (2 * t);
                    const u64 u = local[lo];
                    const u64 v = MulModShoup(local[hi], table.w(w_idx),
                                              table.w_shoup(w_idx), p);
                    local[lo] = AddMod(u, v, p);
                    local[hi] = SubMod(u, v, p);
                }
            }
            for (std::size_t i = 0; i < r; ++i) {
                a[base + i * t_min] = local[i];
            }
        }
        stage += k;
    }
}

}  // namespace hentt
