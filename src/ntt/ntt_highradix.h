/**
 * @file
 * Blocked ("register-based high-radix") negacyclic NTT.
 *
 * Groups log2(R) consecutive radix-2 Cooley-Tukey stages and executes
 * them on an R-element local buffer before writing back — the CPU
 * analogue of the paper's register-resident high-radix GPU kernel
 * (Section V / Fig. 4): each work item gathers R strided elements,
 * performs an R-point NTT privately, and scatters the results, cutting
 * main-memory round-trips from log2(N) to ceil(log2(N)/log2(R)).
 *
 * The output is bit-for-bit identical to NttRadix2.
 */

#ifndef HENTT_NTT_NTT_HIGHRADIX_H
#define HENTT_NTT_NTT_HIGHRADIX_H

#include <cstddef>
#include <span>

#include "ntt/twiddle_table.h"

namespace hentt {

/**
 * Forward negacyclic NTT processed in stage groups of log2(radix).
 *
 * @param a      natural-order input; bit-reversed output (same as
 *               NttRadix2)
 * @param table  twiddle table for (a.size(), p)
 * @param radix  power of two in [2, a.size()]
 */
void NttHighRadix(std::span<u64> a, const TwiddleTable &table,
                  std::size_t radix);

/**
 * Number of full-array passes (GMEM round-trips on the GPU) the
 * high-radix schedule needs: ceil(log2(N) / log2(R)).
 */
std::size_t HighRadixPassCount(std::size_t n, std::size_t radix);

}  // namespace hentt

#endif  // HENTT_NTT_NTT_HIGHRADIX_H
