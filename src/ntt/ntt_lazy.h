/**
 * @file
 * Lazy-reduction (Harvey-style) radix-2 NTT — the butterfly pipeline the
 * paper's Algo. 2 actually specifies: operands live in [0, 4p) and are
 * only reduced when they would overflow, which removes the per-butterfly
 * conditional subtractions from the critical path. This is the butterfly
 * GPU implementations use (it shortens the dependent-latency chain the
 * paper's native-modulo analysis highlights); the strict-range
 * NttRadix2 keeps the library's reference semantics simple.
 *
 * Requires p < 2^62 so 4p fits in 64 bits (common/modarith.h enforces
 * this bound for every modulus in the library).
 */

#ifndef HENTT_NTT_NTT_LAZY_H
#define HENTT_NTT_NTT_LAZY_H

#include <span>

#include "ntt/twiddle_table.h"
#include "simd/simd_backend.h"

namespace hentt {

/**
 * Stage-walk selection for the lazy NTT pipeline. Every consumer of the
 * lazy transforms (NttEngine, RnsPoly, the batched HE kernels) routes
 * through NttRadix2Lazy / InttRadix2Lazy, so flipping the walk here
 * flips the whole library — the hook the fused-vs-unfused bit-identity
 * sweeps (test_deep_circuit) and the parameter-sweep driver
 * (bench/sweep_params) use to compare the two paths on identical
 * workloads without touching call sites.
 */
enum class LazyWalk {
    kFusedRadix4,  ///< fused stage pairs, ceil(log2 N / 2) dispatches — default
    kRadix2,       ///< unfused ablation walk, log2 N dispatches
};

/**
 * The walk the lazy transforms currently execute. Resolution order:
 * ForceLazyWalk override > environment (`HENTT_RADIX=2|4`, read once at
 * first use; any other value keeps the default) > kFusedRadix4.
 */
LazyWalk ActiveLazyWalk();

/** Force the stage walk (tests / benches / the sweep driver). */
void ForceLazyWalk(LazyWalk walk);

/** Drop a ForceLazyWalk override and re-resolve from the environment. */
void ResetLazyWalk();

/**
 * Forward negacyclic NTT with lazy [0, 4p) butterflies (paper Algo. 2).
 * Accepts inputs < p (or more generally < 4p), produces fully reduced
 * outputs (< p) after a final correction pass. Bit-identical to
 * NttRadix2 for inputs < p.
 *
 * Executes through the fused radix-4 stage walker: each kernel
 * dispatch runs two consecutive butterfly levels in registers (fed by
 * the stage-major interleaved twiddle layout of TwiddleTable), so the
 * coefficient array is traversed ceil(log2 N / 2) times instead of
 * log2 N; an odd log2 N finishes with one radix-2 stage. Bit-identical
 * to the radix-2 walk (NttRadix2LazyUnfused) on every backend.
 */
void NttRadix2Lazy(std::span<u64> a, const TwiddleTable &table);

/**
 * The radix-2 stage walk of NttRadix2Lazy — one kernel dispatch (and
 * one O(N) pass over the data) per butterfly level. Kept as the
 * ablation baseline the fused radix-4 walker is validated against and
 * benchmarked next to (micro_ntt / bench_rns_batch radix columns).
 */
void NttRadix2LazyUnfused(std::span<u64> a, const TwiddleTable &table);

/**
 * Forward lazy NTT that *keeps* the [0, 4p) output range: identical to
 * NttRadix2Lazy except the final fold-to-[0, p) pass is skipped. This
 * is the producer half of the end-to-end lazy pipeline: when the
 * consumer is an element-wise Barrett product (which tolerates 16p^2
 * operand products for p < 2^62), the N-element correction pass is pure
 * overhead and can be elided across fused op chains.
 *
 * @post every element of @p a is < 4p and congruent (mod p) to the
 *       fully reduced NttRadix2Lazy output.
 */
void NttRadix2LazyKeepRange(std::span<u64> a, const TwiddleTable &table);

/** Keep-range forward through the radix-2 stage walk (ablation
 *  baseline; bit-identical to NttRadix2LazyKeepRange). */
void NttRadix2LazyKeepRangeUnfused(std::span<u64> a,
                                   const TwiddleTable &table);

/**
 * Inverse with lazy butterflies, fully reduced natural-order output.
 * Bit-identical to InttRadix2. Runs the fused radix-4 stage walker
 * (two Gentleman-Sande levels per pass; see NttRadix2Lazy).
 */
void InttRadix2Lazy(std::span<u64> a, const TwiddleTable &table);

/** Inverse through the radix-2 stage walk (ablation baseline;
 *  bit-identical to InttRadix2Lazy). */
void InttRadix2LazyUnfused(std::span<u64> a, const TwiddleTable &table);

/**
 * The paper's Algo. 2 butterfly in isolation (for tests and docs):
 * given A, B in [0, 4p), produces A' = A + B*Psi, B' = A - B*Psi with
 * both outputs in [0, 4p). The implementation lives in the SIMD
 * backend layer (simd::FwdButterflyElem — the scalar reference every
 * vector backend is validated against); this alias keeps the paper-
 * facing name.
 *
 * @param a,b    in/out operands, each < 4p
 * @param w      twiddle < p
 * @param w_bar  Shoup companion of w
 * @param p      modulus < 2^62
 */
inline void
LazyButterfly(u64 &a, u64 &b, u64 w, u64 w_bar, u64 p)
{
    simd::FwdButterflyElem(a, b, w, w_bar, p);
}

}  // namespace hentt

#endif  // HENTT_NTT_NTT_LAZY_H
