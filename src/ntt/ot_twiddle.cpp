#include "ntt/ot_twiddle.h"

#include <stdexcept>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {

OtTwiddleTable::OtTwiddleTable(std::size_t n, u64 p, std::size_t base)
    : n_(n), p_(p), base_(base)
{
    if (!IsPowerOfTwo(n) || n < 2) {
        throw std::invalid_argument("NTT size must be a power of two >= 2");
    }
    if (!IsPowerOfTwo(base) || base < 2) {
        throw std::invalid_argument("OT base must be a power of two >= 2");
    }
    ValidateModulus(p);
    if ((p - 1) % (2 * n) != 0) {
        throw std::invalid_argument("prime must satisfy p == 1 (mod 2N)");
    }
    log_base_ = Log2Exact(base);
    psi_ = FindPrimitiveRoot(2 * n, p);

    const std::size_t hi_count = (2 * n + base - 1) / base;
    lo_.resize(base);
    lo_shoup_.resize(base);
    hi_.resize(hi_count);
    hi_shoup_.resize(hi_count);

    u64 v = 1;
    for (std::size_t i = 0; i < base; ++i) {
        lo_[i] = v;
        lo_shoup_[i] = ShoupPrecompute(v, p);
        v = MulModNative(v, psi_, p);
    }
    const u64 psi_b = PowMod(psi_, base, p);
    v = 1;
    for (std::size_t i = 0; i < hi_count; ++i) {
        hi_[i] = v;
        hi_shoup_[i] = ShoupPrecompute(v, p);
        v = MulModNative(v, psi_b, p);
    }
}

u64
OtTwiddleTable::Twiddle(u64 e) const
{
    const u64 e_lo = e & (base_ - 1);
    const u64 e_hi = e >> log_base_;
    return MulModNative(lo_[e_lo], hi_[e_hi], p_);
}

u64
ForwardTwiddleExponent(std::size_t i, std::size_t n)
{
    return BitReverse(static_cast<u64>(i), Log2Exact(n));
}

void
NttRadix2Ot(std::span<u64> a, const TwiddleTable &table,
            const OtTwiddleTable &ot, unsigned ot_stages)
{
    const std::size_t n = a.size();
    if (n != table.size() || n != ot.size()) {
        throw std::invalid_argument("span size != table size");
    }
    if (table.modulus() != ot.modulus() || table.psi() != ot.psi()) {
        throw std::invalid_argument("tables disagree on (p, psi)");
    }
    const u64 p = table.modulus();
    const unsigned log_n = Log2Exact(n);
    if (ot_stages > log_n) {
        throw std::invalid_argument("ot_stages exceeds stage count");
    }
    const unsigned first_ot_stage = log_n - ot_stages;

    std::size_t t = n / 2;
    unsigned stage = 0;
    for (std::size_t m = 1; m < n; m <<= 1, ++stage) {
        const bool use_ot = stage >= first_ot_stage;
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t w_idx = m + j;
            const std::size_t base = 2 * j * t;
            if (use_ot) {
                const u64 e = ForwardTwiddleExponent(w_idx, n);
                for (std::size_t k = base; k < base + t; ++k) {
                    const u64 u = a[k];
                    const u64 v = ot.Apply(a[k + t], e);
                    a[k] = AddMod(u, v, p);
                    a[k + t] = SubMod(u, v, p);
                }
            } else {
                for (std::size_t k = base; k < base + t; ++k) {
                    const u64 u = a[k];
                    const u64 v = MulModShoup(a[k + t], table.w(w_idx),
                                              table.w_shoup(w_idx), p);
                    a[k] = AddMod(u, v, p);
                    a[k + t] = SubMod(u, v, p);
                }
            }
        }
        t >>= 1;
    }
}

}  // namespace hentt
