#include "ntt/ntt32.h"

#include <stdexcept>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {

namespace {

constexpr u32
AddMod32(u32 a, u32 b, u32 p)
{
    const u32 s = a + b;  // p < 2^30: no 32-bit overflow
    return s >= p ? s - p : s;
}

constexpr u32
SubMod32(u32 a, u32 b, u32 p)
{
    return a >= b ? a - b : a + p - b;
}

constexpr u32
MulModNative32(u32 a, u32 b, u32 p)
{
    return static_cast<u32>(static_cast<u64>(a) * b % p);
}

}  // namespace

Ntt32Engine::Ntt32Engine(std::size_t n, u32 p) : n_(n), p_(p)
{
    if (!IsPowerOfTwo(n) || n < 2) {
        throw std::invalid_argument("NTT size must be a power of two >= 2");
    }
    if (p < 2 || p >= (u32{1} << 30)) {
        throw std::invalid_argument("32-bit path requires p < 2^30");
    }
    if ((p - 1) % (2 * n) != 0) {
        throw std::invalid_argument("prime must satisfy p == 1 (mod 2N)");
    }
    psi_ = static_cast<u32>(FindPrimitiveRoot(2 * n, p));
    const u32 psi_inv = static_cast<u32>(InvMod(psi_, p));
    n_inv_ = static_cast<u32>(InvMod(static_cast<u64>(n), p));
    n_inv_shoup_ = ShoupPrecompute32(n_inv_, p);

    const unsigned bits = Log2Exact(n);
    fwd_.resize(n);
    fwd_shoup_.resize(n);
    inv_.resize(n);
    inv_shoup_.resize(n);
    u32 power = 1, power_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = BitReverse(i, bits);
        fwd_[r] = power;
        fwd_shoup_[r] = ShoupPrecompute32(power, p);
        inv_[r] = power_inv;
        inv_shoup_[r] = ShoupPrecompute32(power_inv, p);
        power = MulModNative32(power, psi_, p);
        power_inv = MulModNative32(power_inv, psi_inv, p);
    }
}

void
Ntt32Engine::Forward(std::span<u32> a) const
{
    if (a.size() != n_) {
        throw std::invalid_argument("span size != transform size");
    }
    std::size_t t = n_ / 2;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        for (std::size_t j = 0; j < m; ++j) {
            const u32 w = fwd_[m + j];
            const u32 w_bar = fwd_shoup_[m + j];
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                const u32 u = a[k];
                const u32 v = MulModShoup32(a[k + t], w, w_bar, p_);
                a[k] = AddMod32(u, v, p_);
                a[k + t] = SubMod32(u, v, p_);
            }
        }
        t >>= 1;
    }
}

void
Ntt32Engine::Inverse(std::span<u32> a) const
{
    if (a.size() != n_) {
        throw std::invalid_argument("span size != transform size");
    }
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        const std::size_t h = m / 2;
        for (std::size_t j = 0; j < h; ++j) {
            const u32 w = inv_[h + j];
            const u32 w_bar = inv_shoup_[h + j];
            const std::size_t base = 2 * j * t;
            for (std::size_t k = base; k < base + t; ++k) {
                const u32 u = a[k];
                const u32 v = a[k + t];
                a[k] = AddMod32(u, v, p_);
                a[k + t] =
                    MulModShoup32(SubMod32(u, v, p_), w, w_bar, p_);
            }
        }
        t <<= 1;
    }
    for (u32 &x : a) {
        x = MulModShoup32(x, n_inv_, n_inv_shoup_, p_);
    }
}

std::vector<u32>
Ntt32Engine::Multiply(std::span<const u32> a, std::span<const u32> b) const
{
    if (a.size() != n_ || b.size() != n_) {
        throw std::invalid_argument("span size != transform size");
    }
    std::vector<u32> fa(a.begin(), a.end());
    std::vector<u32> fb(b.begin(), b.end());
    Forward(fa);
    Forward(fb);
    std::vector<u32> fc(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        fc[i] = MulModNative32(fa[i], fb[i], p_);
    }
    Inverse(fc);
    return fc;
}

}  // namespace hentt
