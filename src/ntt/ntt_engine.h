/**
 * @file
 * NttEngine — the library's front door for negacyclic NTTs.
 *
 * Owns the twiddle tables for one (N, p) pair, dispatches between the
 * implemented algorithms, and offers element-wise (Hadamard) products in
 * the evaluation domain, which together with Forward/Inverse gives the
 * O(N log N) negacyclic polynomial multiplication of paper Section III-A:
 *
 *     c = INTT(NTT(a) . NTT(b))
 */

#ifndef HENTT_NTT_NTT_ENGINE_H
#define HENTT_NTT_NTT_ENGINE_H

#include <memory>
#include <span>
#include <vector>

#include "ntt/ntt_highradix.h"
#include "ntt/ntt_radix2.h"
#include "ntt/ntt_stockham.h"
#include "ntt/ot_twiddle.h"
#include "ntt/twiddle_table.h"

namespace hentt {

/** Algorithm selector for NttEngine::Forward. */
enum class NttAlgorithm {
    kRadix2,        ///< paper Algo. 1 (Cooley-Tukey, Shoup modmul)
    kRadix2Native,  ///< Algo. 1 with native `%` reduction (Fig. 1)
    kRadix2Barrett, ///< Algo. 1 with Barrett reduction (ablation)
    kStockham,      ///< paper Algo. 3 (out-of-place autosort)
    kHighRadix,     ///< blocked stage groups (Section V)
    kRadix2Ot,      ///< OT on the trailing stages (Section VII)
};

/** Per-(N, p) transform engine. */
class NttEngine
{
  public:
    /**
     * @param n          power-of-two transform size
     * @param p          prime with p == 1 (mod 2n)
     * @param ot_base    base for the on-the-fly twiddling table
     */
    explicit NttEngine(std::size_t n, u64 p, std::size_t ot_base = 1024);

    std::size_t size() const { return table_.size(); }
    u64 modulus() const { return table_.modulus(); }
    const TwiddleTable &table() const { return table_; }
    const OtTwiddleTable &ot_table() const { return ot_; }

    /**
     * Forward negacyclic NTT, in place. Natural-order input; output in
     * bit-reversed order for the Cooley-Tukey family and natural order
     * for Stockham (the distinction is irrelevant for HE element-wise
     * use, as the paper notes).
     *
     * @param radix      high-radix group size (kHighRadix only)
     * @param ot_stages  trailing OT stages (kRadix2Ot only)
     */
    void Forward(std::span<u64> a,
                 NttAlgorithm algo = NttAlgorithm::kRadix2,
                 std::size_t radix = 16, unsigned ot_stages = 1) const;

    /** Inverse negacyclic NTT, in place (expects kRadix2-family order). */
    void Inverse(std::span<u64> a) const;

    /** Element-wise product c[i] = a[i] * b[i] mod p. */
    void Hadamard(std::span<const u64> a, std::span<const u64> b,
                  std::span<u64> c) const;

    /**
     * Negacyclic polynomial product via NTT: returns
     * a(X) * b(X) mod (X^N + 1, p).
     */
    std::vector<u64> Multiply(std::span<const u64> a,
                              std::span<const u64> b) const;

  private:
    TwiddleTable table_;
    OtTwiddleTable ot_;
    std::unique_ptr<StockhamNtt> stockham_;  // lazily built (heavyweight)
};

}  // namespace hentt

#endif  // HENTT_NTT_NTT_ENGINE_H
