/**
 * @file
 * NttEngine — the library's front door for negacyclic NTTs.
 *
 * Owns the twiddle tables for one (N, p) pair, dispatches between the
 * implemented algorithms, and offers element-wise (Hadamard) products in
 * the evaluation domain, which together with Forward/Inverse gives the
 * O(N log N) negacyclic polynomial multiplication of paper Section III-A:
 *
 *     c = INTT(NTT(a) . NTT(b))
 *
 * The default Forward/Inverse path is the lazy [0, 4p) butterfly
 * pipeline of paper Algo. 2 (bit-identical to the strict kRadix2 but
 * with the per-butterfly conditional subtractions hoisted into a single
 * final pass), and Hadamard products reduce through a cached Barrett
 * reducer instead of the native `%` baseline of Fig. 1.
 */

#ifndef HENTT_NTT_NTT_ENGINE_H
#define HENTT_NTT_NTT_ENGINE_H

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/modarith.h"
#include "ntt/ntt_highradix.h"
#include "ntt/ntt_lazy.h"
#include "ntt/ntt_radix2.h"
#include "ntt/ntt_stockham.h"
#include "ntt/ot_twiddle.h"
#include "ntt/twiddle_table.h"

namespace hentt {

/** Algorithm selector for NttEngine::Forward. */
enum class NttAlgorithm {
    kRadix2Lazy,    ///< paper Algo. 2 (lazy [0, 4p) butterflies) — default
    kRadix2,        ///< paper Algo. 1 (Cooley-Tukey, Shoup modmul)
    kRadix2Native,  ///< Algo. 1 with native `%` reduction (Fig. 1)
    kRadix2Barrett, ///< Algo. 1 with Barrett reduction (ablation)
    kStockham,      ///< paper Algo. 3 (out-of-place autosort)
    kHighRadix,     ///< blocked stage groups (Section V)
    kRadix2Ot,      ///< OT on the trailing stages (Section VII)
};

/** Per-(N, p) transform engine. */
class NttEngine
{
  public:
    /**
     * @param n          power-of-two transform size
     * @param p          prime with p == 1 (mod 2n)
     * @param ot_base    base for the on-the-fly twiddling table
     */
    explicit NttEngine(std::size_t n, u64 p, std::size_t ot_base = 1024);

    std::size_t size() const { return table_.size(); }
    u64 modulus() const { return table_.modulus(); }
    const TwiddleTable &table() const { return table_; }
    const OtTwiddleTable &ot_table() const { return ot_; }
    /** Cached Barrett reducer for this engine's modulus. */
    const BarrettReducer &reducer() const { return reducer_; }

    /**
     * Forward negacyclic NTT, in place. Natural-order input; output in
     * bit-reversed order for the Cooley-Tukey family and natural order
     * for Stockham (the distinction is irrelevant for HE element-wise
     * use, as the paper notes).
     *
     * @param radix      high-radix group size (kHighRadix only)
     * @param ot_stages  trailing OT stages (kRadix2Ot only)
     */
    void Forward(std::span<u64> a,
                 NttAlgorithm algo = NttAlgorithm::kRadix2Lazy,
                 std::size_t radix = 16, unsigned ot_stages = 1) const;

    /**
     * Forward lazy NTT that keeps outputs in the lazy [0, 4p) range
     * (skips the final fold pass of kRadix2Lazy). Use when the consumer
     * is a Barrett element-wise product, which tolerates the 16p^2
     * operand products — the end-to-end lazy pipeline of the batched
     * execution layer.
     *
     * @param a in/out coefficient span; outputs are < 4p.
     */
    void ForwardLazy(std::span<u64> a) const;

    /** Inverse negacyclic NTT, in place (expects kRadix2-family order). */
    void Inverse(std::span<u64> a) const;

    /** Element-wise product c[i] = a[i] * b[i] mod p (Barrett path). */
    void Hadamard(std::span<const u64> a, std::span<const u64> b,
                  std::span<u64> c) const;

    /**
     * Negacyclic polynomial product via NTT: returns
     * a(X) * b(X) mod (X^N + 1, p).
     */
    std::vector<u64> Multiply(std::span<const u64> a,
                              std::span<const u64> b) const;

  private:
    const StockhamNtt &stockham() const;

    TwiddleTable table_;
    OtTwiddleTable ot_;
    BarrettReducer reducer_;
    // Stockham plan is heavyweight and rarely used outside the figure
    // reproductions; built on first kStockham request.
    mutable std::once_flag stockham_once_;
    mutable std::unique_ptr<StockhamNtt> stockham_;
};

/**
 * Process-wide transform counters, one increment per single-row N-point
 * transform executed through NttEngine (any algorithm). The relaxed
 * atomic increments cost nothing next to an N log N transform; tests
 * use them to pin down the NTT budget of an HE op (e.g. that
 * eval-domain relinearization keys cut the forward count from 4*np^2
 * to np^2 per Relinearize).
 */
struct NttOpCounts {
    u64 forward = 0;  ///< forward transforms (incl. lazy keep-range)
    u64 inverse = 0;  ///< inverse transforms
    /**
     * Destination limb rows swept by *standalone* element-wise
     * dispatches in the batched HE kernels (one count per row-length
     * loop over a destination row). Element-wise work fused into a
     * transform dispatch — e.g. the add + rescale epilogue the fused
     * Relinearize→ModSwitch stage runs while the inverse-transformed
     * row is still cache-hot — is deliberately *not* counted: the
     * whole point of the fusion is that those memory passes disappear,
     * and tests pin the saving through this counter.
     */
    u64 elementwise = 0;
    /**
     * Butterfly stage-kernel dispatches issued by the lazy transform
     * walkers: a fused radix-4 dispatch covers two butterfly levels, a
     * radix-2 dispatch one, so an N-point lazy transform costs
     * ceil(log2 N / 2) dispatches instead of log2 N (pinned by
     * tests). Note this counts *dispatches*, not physical memory
     * passes — the scalar and AVX-512 tables execute a fused dispatch
     * as one pass over the data, while the production AVX2 table
     * realizes wide fused stages as two row sweeps (its register file
     * cannot hold the fused working set; see simd_avx2.cpp).
     */
    u64 butterfly_stages = 0;
};

/** Snapshot of the process-wide transform counters. */
NttOpCounts GetNttOpCounts();

/** Reset the process-wide transform counters to zero. */
void ResetNttOpCounts();

/** Record @p rows destination limb rows swept by a standalone
 *  element-wise dispatch (see NttOpCounts::elementwise). */
void AddElementwisePasses(u64 rows);

/** Record @p stages butterfly stage-kernel dispatches (see
 *  NttOpCounts::butterfly_stages). Called by the lazy stage walkers. */
void AddButterflyStageDispatches(u64 stages);

}  // namespace hentt

#endif  // HENTT_NTT_NTT_ENGINE_H
