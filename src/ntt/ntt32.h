/**
 * @file
 * 32-bit-word NTT path (paper Section IV, "32b vs 64b word size").
 *
 * With <= 30-bit primes the products fit in 64 bits, so every butterfly
 * uses plain 64-bit arithmetic instead of 128-bit — cheaper per
 * operation, but a fixed ciphertext-modulus budget then needs twice as
 * many primes (twice the rows, twice the transforms). The paper measures
 * the net effect at ~5%; `bench/ablation_word_size` explores it on the
 * model, and this module provides the real implementation so the
 * trade-off can also be measured on the CPU (micro_ntt32 cases in
 * bench/micro_ntt.cpp).
 */

#ifndef HENTT_NTT_NTT32_H
#define HENTT_NTT_NTT32_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/int128.h"

namespace hentt {

/** Self-contained 32-bit negacyclic NTT engine (p < 2^30). */
class Ntt32Engine
{
  public:
    /**
     * @param n  power-of-two transform size
     * @param p  prime < 2^30 with p == 1 (mod 2n)
     */
    Ntt32Engine(std::size_t n, u32 p);

    std::size_t size() const { return n_; }
    u32 modulus() const { return p_; }
    u32 psi() const { return psi_; }

    /** Forward negacyclic NTT, in place, bit-reversed output. */
    void Forward(std::span<u32> a) const;
    /** Inverse, natural-order output, N^{-1} folded in. */
    void Inverse(std::span<u32> a) const;

    /** Negacyclic product c = a * b mod (X^N + 1, p). */
    std::vector<u32> Multiply(std::span<const u32> a,
                              std::span<const u32> b) const;

  private:
    std::size_t n_;
    u32 p_;
    u32 psi_;
    u32 n_inv_;
    // Twiddles with 32-bit Shoup companions (floor(w * 2^32 / p)).
    std::vector<u32> fwd_, fwd_shoup_, inv_, inv_shoup_;
    u32 n_inv_shoup_;
};

/** Shoup companion for the 32-bit pipeline. */
constexpr u32
ShoupPrecompute32(u32 w, u32 p)
{
    return static_cast<u32>((static_cast<u64>(w) << 32) / p);
}

/** 32-bit Shoup modmul, strict output < p. */
constexpr u32
MulModShoup32(u32 b, u32 w, u32 w_bar, u32 p)
{
    const u32 q = static_cast<u32>((static_cast<u64>(b) * w_bar) >> 32);
    u32 r = b * w - q * p;
    if (r >= p) {
        r -= p;
    }
    return r;
}

}  // namespace hentt

#endif  // HENTT_NTT_NTT32_H
