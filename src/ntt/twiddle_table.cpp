#include "ntt/twiddle_table.h"

#include <stdexcept>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {

TwiddleTable::TwiddleTable(std::size_t n, u64 p) : n_(n), p_(p)
{
    if (!IsPowerOfTwo(n) || n < 2) {
        throw std::invalid_argument("NTT size must be a power of two >= 2");
    }
    ValidateModulus(p);
    if ((p - 1) % (2 * n) != 0) {
        throw std::invalid_argument("prime must satisfy p == 1 (mod 2N)");
    }

    psi_ = FindPrimitiveRoot(2 * n, p);
    psi_inv_ = InvMod(psi_, p);
    n_inv_ = InvMod(static_cast<u64>(n), p);
    n_inv_shoup_ = ShoupPrecompute(n_inv_, p);

    const unsigned bits = Log2Exact(n);
    fwd_.resize(n);
    fwd_shoup_.resize(n);
    inv_.resize(n);
    inv_shoup_.resize(n);
    // Powers in natural order first, then scatter into bit-reversed slots.
    u64 power = 1;
    u64 power_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = BitReverse(i, bits);
        fwd_[r] = power;
        fwd_shoup_[r] = ShoupPrecompute(power, p);
        inv_[r] = power_inv;
        inv_shoup_[r] = ShoupPrecompute(power_inv, p);
        power = MulModNative(power, psi_, p);
        power_inv = MulModNative(power_inv, psi_inv_, p);
    }

    BuildFusedStages();
}

void
TwiddleTable::BuildFusedStages()
{
    const std::size_t n = n_;
    radix2_tail_ = (Log2Exact(n) % 2) != 0;

    // Forward (CT): fuse level pairs (m, 2m) for m = 1, 4, 16, ...
    // Super-block j of stage m spans a[4jq..4jq+4q) with q = n / (4m);
    // its first-level twiddle is Psi[m + j], its two second-level
    // (cross-term) twiddles are Psi[2m + 2j] and Psi[2m + 2j + 1].
    // Each stage's words are packed contiguously: 2m pair words, then
    // 4m quad words, so both kernel streams advance sequentially.
    std::size_t total = 0;
    for (std::size_t m = 1; 4 * m <= n; m *= 4) {
        total += 6 * m;
    }
    fwd4_words_.reserve(total);
    std::vector<std::size_t> offsets;
    for (std::size_t m = 1; 4 * m <= n; m *= 4) {
        offsets.push_back(fwd4_words_.size());
        for (std::size_t j = 0; j < m; ++j) {
            fwd4_words_.push_back(fwd_[m + j]);
            fwd4_words_.push_back(fwd_shoup_[m + j]);
        }
        for (std::size_t j = 0; j < m; ++j) {
            fwd4_words_.push_back(fwd_[2 * m + 2 * j]);
            fwd4_words_.push_back(fwd_shoup_[2 * m + 2 * j]);
            fwd4_words_.push_back(fwd_[2 * m + 2 * j + 1]);
            fwd4_words_.push_back(fwd_shoup_[2 * m + 2 * j + 1]);
        }
    }
    std::size_t s = 0;
    for (std::size_t m = 1; 4 * m <= n; m *= 4, ++s) {
        const u64 *base = fwd4_words_.data() + offsets[s];
        fwd4_stages_.push_back({m, n / (4 * m), base, base + 2 * m});
    }

    // Inverse (GS): fuse level pairs (t, 2t) for t = 1, 4, 16, ...
    // Super-block j (of M = n / (4t)) butterflies quarters of q = t
    // elements; its two first-level twiddles are PsiInv[h1 + 2j] and
    // PsiInv[h1 + 2j + 1] (h1 = n / (2t)), its shared second-level
    // twiddle is PsiInv[M + j].
    total = 0;
    for (std::size_t t = 1; 4 * t <= n; t *= 4) {
        total += 6 * (n / (4 * t));
    }
    inv4_words_.reserve(total);
    offsets.clear();
    for (std::size_t t = 1; 4 * t <= n; t *= 4) {
        const std::size_t h1 = n / (2 * t);
        const std::size_t blocks = n / (4 * t);
        offsets.push_back(inv4_words_.size());
        for (std::size_t j = 0; j < blocks; ++j) {
            inv4_words_.push_back(inv_[h1 + 2 * j]);
            inv4_words_.push_back(inv_shoup_[h1 + 2 * j]);
            inv4_words_.push_back(inv_[h1 + 2 * j + 1]);
            inv4_words_.push_back(inv_shoup_[h1 + 2 * j + 1]);
        }
        for (std::size_t j = 0; j < blocks; ++j) {
            inv4_words_.push_back(inv_[blocks + j]);
            inv4_words_.push_back(inv_shoup_[blocks + j]);
        }
    }
    s = 0;
    for (std::size_t t = 1; 4 * t <= n; t *= 4, ++s) {
        const std::size_t blocks = n / (4 * t);
        const u64 *base = inv4_words_.data() + offsets[s];
        inv4_stages_.push_back({blocks, t, base + 4 * blocks, base});
    }
}

}  // namespace hentt
