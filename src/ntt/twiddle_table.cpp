#include "ntt/twiddle_table.h"

#include <stdexcept>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {

TwiddleTable::TwiddleTable(std::size_t n, u64 p) : n_(n), p_(p)
{
    if (!IsPowerOfTwo(n) || n < 2) {
        throw std::invalid_argument("NTT size must be a power of two >= 2");
    }
    ValidateModulus(p);
    if ((p - 1) % (2 * n) != 0) {
        throw std::invalid_argument("prime must satisfy p == 1 (mod 2N)");
    }

    psi_ = FindPrimitiveRoot(2 * n, p);
    psi_inv_ = InvMod(psi_, p);
    n_inv_ = InvMod(static_cast<u64>(n), p);
    n_inv_shoup_ = ShoupPrecompute(n_inv_, p);

    const unsigned bits = Log2Exact(n);
    fwd_.resize(n);
    fwd_shoup_.resize(n);
    inv_.resize(n);
    inv_shoup_.resize(n);
    // Powers in natural order first, then scatter into bit-reversed slots.
    u64 power = 1;
    u64 power_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = BitReverse(i, bits);
        fwd_[r] = power;
        fwd_shoup_[r] = ShoupPrecompute(power, p);
        inv_[r] = power_inv;
        inv_shoup_[r] = ShoupPrecompute(power_inv, p);
        power = MulModNative(power, psi_, p);
        power_inv = MulModNative(power_inv, psi_inv_, p);
    }
}

}  // namespace hentt
