#include "ntt/ntt_engine.h"

#include <atomic>
#include <stdexcept>

#include "simd/simd_backend.h"

namespace hentt {

namespace {

std::atomic<u64> g_forward_count{0};
std::atomic<u64> g_inverse_count{0};
std::atomic<u64> g_elementwise_count{0};
std::atomic<u64> g_butterfly_stage_count{0};

}  // namespace

NttOpCounts
GetNttOpCounts()
{
    return {g_forward_count.load(std::memory_order_relaxed),
            g_inverse_count.load(std::memory_order_relaxed),
            g_elementwise_count.load(std::memory_order_relaxed),
            g_butterfly_stage_count.load(std::memory_order_relaxed)};
}

void
ResetNttOpCounts()
{
    g_forward_count.store(0, std::memory_order_relaxed);
    g_inverse_count.store(0, std::memory_order_relaxed);
    g_elementwise_count.store(0, std::memory_order_relaxed);
    g_butterfly_stage_count.store(0, std::memory_order_relaxed);
}

void
AddElementwisePasses(u64 rows)
{
    g_elementwise_count.fetch_add(rows, std::memory_order_relaxed);
}

void
AddButterflyStageDispatches(u64 stages)
{
    g_butterfly_stage_count.fetch_add(stages, std::memory_order_relaxed);
}

NttEngine::NttEngine(std::size_t n, u64 p, std::size_t ot_base)
    : table_(n, p), ot_(n, p, std::min(ot_base, 2 * n)), reducer_(p)
{
}

const StockhamNtt &
NttEngine::stockham() const
{
    std::call_once(stockham_once_, [this] {
        stockham_ = std::make_unique<StockhamNtt>(size(), modulus());
    });
    return *stockham_;
}

void
NttEngine::ForwardLazy(std::span<u64> a) const
{
    g_forward_count.fetch_add(1, std::memory_order_relaxed);
    NttRadix2LazyKeepRange(a, table_);
}

void
NttEngine::Forward(std::span<u64> a, NttAlgorithm algo, std::size_t radix,
                   unsigned ot_stages) const
{
    g_forward_count.fetch_add(1, std::memory_order_relaxed);
    switch (algo) {
      case NttAlgorithm::kRadix2Lazy:
        NttRadix2Lazy(a, table_);
        return;
      case NttAlgorithm::kRadix2:
        NttRadix2(a, table_);
        return;
      case NttAlgorithm::kRadix2Native:
        NttRadix2Native(a, table_);
        return;
      case NttAlgorithm::kRadix2Barrett:
        NttRadix2Barrett(a, table_);
        return;
      case NttAlgorithm::kStockham: {
        std::vector<u64> in(a.begin(), a.end());
        const std::vector<u64> out = stockham().Forward(in);
        std::copy(out.begin(), out.end(), a.begin());
        return;
      }
      case NttAlgorithm::kHighRadix:
        NttHighRadix(a, table_, radix);
        return;
      case NttAlgorithm::kRadix2Ot:
        NttRadix2Ot(a, table_, ot_, ot_stages);
        return;
    }
    throw std::invalid_argument("unknown NTT algorithm");
}

void
NttEngine::Inverse(std::span<u64> a) const
{
    g_inverse_count.fetch_add(1, std::memory_order_relaxed);
    InttRadix2Lazy(a, table_);
}

void
NttEngine::Hadamard(std::span<const u64> a, std::span<const u64> b,
                    std::span<u64> c) const
{
    if (a.size() != size() || b.size() != size() || c.size() != size()) {
        throw std::invalid_argument("span size != transform size");
    }
    simd::Active().mul_barrett_rows(c.data(), a.data(), b.data(),
                                    size(), simd::Consts(reducer_));
}

std::vector<u64>
NttEngine::Multiply(std::span<const u64> a, std::span<const u64> b) const
{
    std::vector<u64> fa(a.begin(), a.end());
    std::vector<u64> fb(b.begin(), b.end());
    NttRadix2Lazy(fa, table_);
    NttRadix2Lazy(fb, table_);
    std::vector<u64> fc(size());
    Hadamard(fa, fb, fc);
    InttRadix2Lazy(fc, table_);
    return fc;
}

}  // namespace hentt
