/**
 * @file
 * O(N^2) reference transforms used as test oracles.
 *
 * NaiveNegacyclicNtt computes X_k = sum_n a_n * psi^{n(2k+1)} mod p in
 * natural order — the merged negacyclic forward transform of paper
 * Section III-A. NaiveNegacyclicIntt inverts it. These are deliberately
 * slow and simple; every fast implementation in the library is checked
 * against them.
 */

#ifndef HENTT_NTT_NTT_NAIVE_H
#define HENTT_NTT_NTT_NAIVE_H

#include <vector>

#include "common/int128.h"

namespace hentt {

/** Forward negacyclic NTT, natural-order output. */
std::vector<u64> NaiveNegacyclicNtt(const std::vector<u64> &a, u64 psi,
                                    u64 p);

/** Inverse of NaiveNegacyclicNtt. */
std::vector<u64> NaiveNegacyclicIntt(const std::vector<u64> &x, u64 psi,
                                     u64 p);

/** Plain (cyclic) naive NTT with n-th root omega, natural order. */
std::vector<u64> NaiveCyclicNtt(const std::vector<u64> &a, u64 omega,
                                u64 p);

}  // namespace hentt

#endif  // HENTT_NTT_NTT_NAIVE_H
