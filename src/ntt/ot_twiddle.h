/**
 * @file
 * On-the-fly twiddling (OT) — the paper's Section VII contribution.
 *
 * A twiddle factor psi^e cannot be generated on the fly cheaply because
 * (a) each generation costs a modular reduction and (b) Shoup's modmul
 * needs the companion word floor(w * 2^64 / p) of the *product*, which
 * cannot be derived from the factors' companions. OT sidesteps both: it
 * never materializes w = w_hi * w_lo at all. Writing the exponent in
 * base b as e = e_hi * b + e_lo, the input is multiplied consecutively
 * (associativity) by the two table entries
 *
 *     lo[e_lo]  = psi^{e_lo},          e_lo in [0, b)
 *     hi[e_hi]  = psi^{b * e_hi},      e_hi in [0, ceil(2N / b))
 *
 * each of which has its own precomputed Shoup companion. The table
 * shrinks from 2N entries to b + ceil(2N/b) (paper: base 1024 is best,
 * e.g. 1024 + 2^17/1024 entries for N = 2^17) at the cost of one extra
 * Shoup modmul per generated twiddle. Applied to the *late* NTT stages —
 * where the per-stage table is large (Fig. 8) — this trades a little
 * compute for a ~24.5% DRAM-traffic reduction.
 */

#ifndef HENTT_NTT_OT_TWIDDLE_H
#define HENTT_NTT_OT_TWIDDLE_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/modarith.h"
#include "ntt/twiddle_table.h"

namespace hentt {

/** Factorized twiddle table: psi^e = lo[e % b] * hi[e / b]. */
class OtTwiddleTable
{
  public:
    /**
     * @param n     transform size (exponents run over [0, 2n))
     * @param p     prime, p == 1 (mod 2n)
     * @param base  factorization base b (power of two; paper default 1024)
     */
    OtTwiddleTable(std::size_t n, u64 p, std::size_t base = 1024);

    std::size_t size() const { return n_; }
    u64 modulus() const { return p_; }
    std::size_t base() const { return base_; }

    /** Number of precomputed twiddle entries: b + ceil(2N/b). */
    std::size_t entry_count() const { return lo_.size() + hi_.size(); }

    /** Table bytes including Shoup companions (2 words per entry). */
    std::size_t table_bytes() const
    {
        return 2 * entry_count() * sizeof(u64);
    }

    /**
     * Apply psi^e to x by two consecutive Shoup multiplies
     * (x * lo[e_lo]) * hi[e_hi] — the OT butterfly path. One extra
     * modmul vs. a direct table lookup, zero DRAM bytes for the bulk
     * of the table.
     */
    u64
    Apply(u64 x, u64 e) const
    {
        const u64 e_lo = e & (base_ - 1);
        const u64 e_hi = e >> log_base_;
        const u64 partial = MulModShoup(x, lo_[e_lo], lo_shoup_[e_lo], p_);
        return MulModShoup(partial, hi_[e_hi], hi_shoup_[e_hi], p_);
    }

    /** Reconstruct the full twiddle psi^e (for verification/tests). */
    u64 Twiddle(u64 e) const;

    /** The primitive 2N-th root used by the table. */
    u64 psi() const { return psi_; }

  private:
    std::size_t n_;
    u64 p_;
    std::size_t base_;
    unsigned log_base_;
    u64 psi_;
    std::vector<u64> lo_, lo_shoup_;  // psi^i, i < b
    std::vector<u64> hi_, hi_shoup_;  // psi^{b*i}, i < ceil(2N/b)
};

/**
 * Forward radix-2 negacyclic NTT where the last @p ot_stages stages draw
 * twiddles through an OtTwiddleTable instead of the full table (the
 * configuration of paper Fig. 11(c)). Stages before the cut use @p table
 * as usual. Output identical to NttRadix2.
 *
 * @param a          natural-order input, bit-reversed output
 * @param table      full twiddle table (early stages)
 * @param ot         factorized table (late stages)
 * @param ot_stages  how many trailing stages use OT (0 = plain radix-2)
 */
void NttRadix2Ot(std::span<u64> a, const TwiddleTable &table,
                 const OtTwiddleTable &ot, unsigned ot_stages);

/**
 * Exponent of psi for forward twiddle index i (bit-reversed scheme):
 * Psi[i] = psi^{BitReverse(i, log2 N)}.
 */
u64 ForwardTwiddleExponent(std::size_t i, std::size_t n);

}  // namespace hentt

#endif  // HENTT_NTT_OT_TWIDDLE_H
