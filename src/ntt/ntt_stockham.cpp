#include "ntt/ntt_stockham.h"

#include <stdexcept>
#include <utility>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {

StockhamNtt::StockhamNtt(std::size_t n, u64 p) : n_(n), p_(p)
{
    if (!IsPowerOfTwo(n) || n < 2) {
        throw std::invalid_argument("NTT size must be a power of two >= 2");
    }
    ValidateModulus(p);
    if ((p - 1) % (2 * n) != 0) {
        throw std::invalid_argument("prime must satisfy p == 1 (mod 2N)");
    }
    psi_ = FindPrimitiveRoot(2 * n, p);
    const u64 psi_inv = InvMod(psi_, p);
    const u64 omega = MulModNative(psi_, psi_, p);
    const u64 omega_inv = InvMod(omega, p);
    n_inv_ = InvMod(static_cast<u64>(n), p);
    n_inv_shoup_ = ShoupPrecompute(n_inv_, p);

    auto fill = [&](std::vector<u64> &pow, std::vector<u64> &shoup, u64 base,
                    std::size_t count) {
        pow.resize(count);
        shoup.resize(count);
        u64 v = 1;
        for (std::size_t i = 0; i < count; ++i) {
            pow[i] = v;
            shoup[i] = ShoupPrecompute(v, p);
            v = MulModNative(v, base, p);
        }
    };
    fill(psi_pow_, psi_pow_shoup_, psi_, n);
    fill(psi_inv_pow_, psi_inv_pow_shoup_, psi_inv, n);
    fill(omega_pow_, omega_pow_shoup_, omega, n / 2);
    fill(omega_inv_pow_, omega_inv_pow_shoup_, omega_inv, n / 2);
}

void
StockhamNtt::Sweep(std::vector<u64> &x, std::vector<u64> &y,
                   const std::vector<u64> &omega_pow,
                   const std::vector<u64> &omega_pow_shoup) const
{
    // Radix-2 decimation-in-frequency autosort: at step t, l = n/2^{t+1}
    // groups of m = 2^t contiguous elements; outputs land self-sorted.
    std::size_t l = n_ / 2;
    std::size_t m = 1;
    while (l >= 1) {
        for (std::size_t j = 0; j < l; ++j) {
            const u64 w = omega_pow[j * m];
            const u64 w_shoup = omega_pow_shoup[j * m];
            for (std::size_t k = 0; k < m; ++k) {
                const u64 c0 = x[k + j * m];
                const u64 c1 = x[k + (j + l) * m];
                y[k + 2 * j * m] = AddMod(c0, c1, p_);
                y[k + (2 * j + 1) * m] =
                    MulModShoup(SubMod(c0, c1, p_), w, w_shoup, p_);
            }
        }
        std::swap(x, y);
        l >>= 1;
        m <<= 1;
    }
}

std::vector<u64>
StockhamNtt::Forward(const std::vector<u64> &a) const
{
    if (a.size() != n_) {
        throw std::invalid_argument("input size != transform size");
    }
    std::vector<u64> x(n_), y(n_, 0);
    // Unmerged negacyclic pre-twist: b_n = a_n * psi^n.
    for (std::size_t i = 0; i < n_; ++i) {
        x[i] = MulModShoup(a[i] % p_, psi_pow_[i], psi_pow_shoup_[i], p_);
    }
    Sweep(x, y, omega_pow_, omega_pow_shoup_);
    return x;
}

std::vector<u64>
StockhamNtt::Inverse(const std::vector<u64> &in) const
{
    if (in.size() != n_) {
        throw std::invalid_argument("input size != transform size");
    }
    std::vector<u64> x = in;
    std::vector<u64> y(n_, 0);
    Sweep(x, y, omega_inv_pow_, omega_inv_pow_shoup_);
    // Post-twist by psi^{-n} and scale by N^{-1}.
    for (std::size_t i = 0; i < n_; ++i) {
        u64 v = MulModShoup(x[i], psi_inv_pow_[i], psi_inv_pow_shoup_[i],
                            p_);
        x[i] = MulModShoup(v, n_inv_, n_inv_shoup_, p_);
    }
    return x;
}

}  // namespace hentt
