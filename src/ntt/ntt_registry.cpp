#include "ntt/ntt_registry.h"

namespace hentt {

NttEngineRegistry &
NttEngineRegistry::Global()
{
    static NttEngineRegistry registry;
    return registry;
}

std::shared_ptr<const NttEngine>
NttEngineRegistry::Acquire(std::size_t n, u64 p, std::size_t ot_base)
{
    const Key key{n, p, ot_base};
    {
        MutexLock lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            if (auto live = it->second.lock()) {
                return live;
            }
        }
    }
    // Build outside the lock; on a race the first live insert wins and
    // the duplicate is discarded.
    auto built = std::make_shared<const NttEngine>(n, p, ot_base);
    MutexLock lock(mutex_);
    // Engine builds are rare and expensive, so sweeping dead entries
    // here keeps the map bounded by the live working set for free.
    for (auto it = cache_.begin(); it != cache_.end();) {
        it = it->second.expired() ? cache_.erase(it) : std::next(it);
    }
    auto &slot = cache_[key];
    if (auto live = slot.lock()) {
        return live;
    }
    slot = built;
    return built;
}

std::size_t
NttEngineRegistry::cached_count() const
{
    MutexLock lock(mutex_);
    std::size_t live = 0;
    for (const auto &[key, entry] : cache_) {
        live += entry.expired() ? 0 : 1;
    }
    return live;
}

void
NttEngineRegistry::Clear()
{
    MutexLock lock(mutex_);
    cache_.clear();
}

}  // namespace hentt
